//! The TCP accept loop, worker pool, and graceful shutdown plumbing.
//!
//! Architecture: one acceptor thread (the caller of [`Server::run`])
//! pushes accepted connections into a [`BoundedQueue`]; a fixed pool of
//! worker threads pops, parses, routes, and responds. When the queue is
//! full the acceptor writes a `503` + `Retry-After` *inline* and closes
//! — explicit backpressure instead of unbounded buffering.
//!
//! Shutdown is drain-and-exit: [`ServerHandle::shutdown`] (or the
//! `/v1/admin/shutdown` endpoint) flips an atomic flag and nudges the
//! acceptor with a loopback connection; the acceptor stops accepting,
//! closes the queue, and joins the workers — which finish every already
//! accepted request before exiting.
//!
//! Every connection is stamped with its accept time. That timestamp
//! anchors the request deadline: a connection that already waited past
//! the deadline in the queue is shed at dequeue with `503` +
//! `Retry-After` (cheaper than starting doomed work), and one that
//! expires mid-sweep gets `504 deadline_exceeded` with completed rows
//! persisted to the durable store for the retry to resume from.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::{Api, ApiLimits};
use crate::http::{read_request_within, write_response, HttpError, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServeStats;
use crate::store::ResponseStore;

/// Default per-connection read timeout (seconds): a client that stalls
/// or trickles mid-request cannot pin a worker forever. Overridable via
/// [`ServeConfig::read_timeout_secs`].
pub const DEFAULT_READ_TIMEOUT_SECS: f64 = 10.0;

/// Default wall-clock request deadline (seconds), measured from accept.
/// Generous on purpose: it exists to bound pathological queue waits and
/// runaway sweeps, not to race healthy requests.
pub const DEFAULT_REQUEST_DEADLINE_SECS: f64 = 300.0;

/// Default durable-store size budget: 256 MiB.
pub const DEFAULT_STORE_BUDGET_BYTES: u64 = 268_435_456;

/// Everything the daemon needs to come up.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads; `0` = available parallelism.
    pub workers: usize,
    /// Bounded connection-queue depth (backpressure threshold).
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Threads each sweep computation may use.
    pub sweep_threads: usize,
    /// Largest accepted `opts.realizations` on sweep requests.
    pub max_realizations: usize,
    /// Largest accepted `opts.messages` on sweep requests.
    pub max_messages: usize,
    /// Durable response-store directory; `None` disables the store.
    pub store_dir: Option<String>,
    /// Durable-store size budget in bytes (oldest-first compaction).
    pub store_budget_bytes: u64,
    /// Wall-clock request deadline in seconds, measured from accept.
    pub request_deadline_secs: f64,
    /// Overall per-connection read budget in seconds.
    pub read_timeout_secs: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 128,
            cache_capacity: 512,
            cache_shards: 8,
            sweep_threads: 1,
            max_realizations: 64,
            max_messages: 200,
            store_dir: None,
            store_budget_bytes: DEFAULT_STORE_BUDGET_BYTES,
            request_deadline_secs: DEFAULT_REQUEST_DEADLINE_SECS,
            read_timeout_secs: DEFAULT_READ_TIMEOUT_SECS,
        }
    }
}

/// A failure bringing the daemon up or running it.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind (address in use, bad address, ...).
    Bind(String),
    /// An I/O failure on the listening socket itself.
    Io(std::io::Error),
    /// The durable response store could not be opened.
    Store(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(m) => write!(f, "bind: {m}"),
            ServeError::Io(e) => write!(f, "listener: {e}"),
            ServeError::Store(m) => write!(f, "store: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One accepted connection plus the moment it arrived; the accept time
/// anchors both queue-expiry shedding and the request deadline.
struct Conn {
    stream: TcpStream,
    accepted: Instant,
}

/// Shared state between the acceptor, the workers, and handles.
struct Shared {
    api: Api,
    stats: Arc<ServeStats>,
    queue: BoundedQueue<Conn>,
    stop: AtomicBool,
    local_addr: SocketAddr,
    request_deadline: Option<Duration>,
    read_timeout: Option<Duration>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

/// A cheap clone-able handle that can stop a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful drain-and-exit: stop accepting, finish every
    /// queued and in-flight request, then return from [`Server::run`].
    /// Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the acceptor out of its blocking accept() with a
        // throwaway loopback connection; best-effort by design.
        let _ = TcpStream::connect_timeout(&self.shared.local_addr, Duration::from_secs(1));
    }

    /// The address the server is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The server's own statistics (what `/metricsz` reports).
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }
}

impl Server {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Bind(format!("{}: {e}", cfg.addr)))?;
        let local_addr = listener.local_addr().map_err(ServeError::Io)?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            cfg.workers
        };
        let stats = Arc::new(ServeStats::new());
        let store = match &cfg.store_dir {
            Some(dir) => Some(Arc::new(
                ResponseStore::open(Path::new(dir), cfg.store_budget_bytes)
                    .map_err(|e| ServeError::Store(format!("{dir}: {e}")))?,
            )),
            None => None,
        };
        let api = Api::new(
            cfg.cache_capacity,
            cfg.cache_shards,
            store,
            Arc::clone(&stats),
            ApiLimits {
                sweep_threads: cfg.sweep_threads.max(1),
                max_realizations: cfg.max_realizations,
                max_messages: cfg.max_messages,
            },
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                api,
                stats,
                queue: BoundedQueue::new(cfg.queue_depth),
                stop: AtomicBool::new(false),
                local_addr,
                request_deadline: positive_secs(cfg.request_deadline_secs),
                read_timeout: positive_secs(cfg.read_timeout_secs),
            }),
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] fires, then
    /// drains and joins the workers. Consumes the server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] only for listener-level failures; per-connection
    /// errors are answered on the wire and never abort the loop.
    pub fn run(self) -> Result<(), ServeError> {
        obs::info!(
            "serve",
            "listening on {} with {} worker(s)",
            self.shared.local_addr,
            self.workers
        );
        let handle = self.handle();
        let worker_threads: Vec<_> = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &handle_of(&shared)))
                    .expect("spawn worker thread")
            })
            .collect();
        drop(handle);

        for stream in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                // The nudge connection (or any racing client) lands here;
                // drop it and stop accepting.
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    obs::warn!("serve", "accept failed: {e}");
                    continue;
                }
            };
            let conn = Conn {
                stream,
                accepted: Instant::now(),
            };
            match self.shared.queue.try_push(conn) {
                Ok(_depth) => {
                    self.shared
                        .stats
                        .gauge(&self.shared.stats.queue_depth, "serve.queue_depth", 1);
                }
                Err(PushError::Full(conn) | PushError::Closed(conn)) => {
                    reject(&self.shared, conn.stream);
                }
            }
        }

        self.shared.queue.close();
        for t in worker_threads {
            let _ = t.join();
        }
        obs::info!("serve", "drained and stopped");
        Ok(())
    }
}

fn handle_of(shared: &Arc<Shared>) -> ServerHandle {
    ServerHandle {
        shared: Arc::clone(shared),
    }
}

/// `secs > 0` as a [`Duration`]; zero or negative disables the knob.
fn positive_secs(secs: f64) -> Option<Duration> {
    (secs > 0.0 && secs.is_finite()).then(|| Duration::from_secs_f64(secs))
}

/// Sheds one connection with `503` + `Retry-After: 1`; best-effort.
fn reject(shared: &Shared, mut stream: TcpStream) {
    shared.stats.bump(&shared.stats.rejected, "serve.rejected");
    let resp = Response {
        retry_after: Some(1),
        ..Response::error(503, "overloaded", "queue full, retry shortly")
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = write_response(&mut stream, &resp);
    let _ = stream.flush();
}

fn worker_loop(shared: &Shared, handle: &ServerHandle) {
    while let Some(conn) = shared.queue.pop() {
        shared
            .stats
            .gauge(&shared.stats.queue_depth, "serve.queue_depth", -1);
        // A connection whose deadline already expired while queued gets
        // shed here — answering is cheaper than starting doomed work,
        // and it never counts as in-flight.
        if let Some(deadline) = shared.request_deadline {
            if conn.accepted.elapsed() >= deadline {
                expire_queued(shared, conn.stream);
                continue;
            }
        }
        shared
            .stats
            .gauge(&shared.stats.inflight, "serve.inflight", 1);
        let shutdown_after = handle_connection(shared, conn);
        shared
            .stats
            .gauge(&shared.stats.inflight, "serve.inflight", -1);
        if shutdown_after {
            handle.shutdown();
        }
    }
}

/// Sheds a connection that out-waited its deadline in the queue:
/// `503` + `Retry-After: 1`, best-effort, counted separately from
/// queue-full rejections.
fn expire_queued(shared: &Shared, mut stream: TcpStream) {
    shared.stats.bump(
        &shared.stats.deadline_queue_expired,
        "serve.deadline_queue_expired",
    );
    let resp = Response {
        retry_after: Some(1),
        ..Response::error(
            503,
            "overloaded",
            "deadline expired while queued, retry shortly",
        )
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = write_response(&mut stream, &resp);
    let _ = stream.flush();
}

/// Serves one connection end to end; returns whether the response asked
/// for a server shutdown.
fn handle_connection(shared: &Shared, conn: Conn) -> bool {
    let Conn {
        mut stream,
        accepted,
    } = conn;
    let _ = stream.set_read_timeout(shared.read_timeout);
    let _ = stream.set_nodelay(true);
    let started = Instant::now();
    let deadline = shared.request_deadline.map(|d| accepted + d);
    let (response, class) = match read_request_within(&mut stream, shared.read_timeout) {
        Ok(req) => {
            let class = Api::class_of(&req.path);
            (shared.api.handle_at(&req, deadline), class)
        }
        Err(HttpError::TooLarge(m)) => (Response::error(413, "too_large", &m), "other"),
        Err(HttpError::Malformed(m)) => (Response::error(400, "malformed_request", &m), "other"),
        Err(HttpError::Io(e)) => {
            // Nothing parseable arrived; log and drop without a response.
            obs::debug!("serve", "read failed: {e}");
            return false;
        }
    };
    shared
        .stats
        .observe(class, response.status, started.elapsed().as_secs_f64());
    if let Err(e) = write_response(&mut stream, &response) {
        obs::debug!("serve", "write failed: {e}");
    }
    response.shutdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request};

    fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(&mut stream, method, path, body).unwrap();
        read_response(&mut stream).unwrap()
    }

    #[test]
    fn serves_health_and_shuts_down_gracefully() {
        let server = Server::bind(&ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let resp = roundtrip(addr, "GET", "/healthz", "");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"status\":\"ok\"}");

        handle.shutdown();
        runner.join().unwrap().unwrap();
        // After shutdown the port no longer accepts.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn admin_shutdown_endpoint_stops_the_server() {
        let server = Server::bind(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run());
        let resp = roundtrip(addr, "POST", "/v1/admin/shutdown", "");
        assert_eq!(resp.status, 200);
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn bind_failure_is_reported() {
        let taken = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = taken.local_addr().unwrap();
        let err = Server::bind(&ServeConfig {
            addr: addr.to_string(),
            ..ServeConfig::default()
        });
        assert!(matches!(err, Err(ServeError::Bind(_))));
    }

    #[test]
    fn malformed_request_gets_400_and_server_survives() {
        let server = Server::bind(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        let resp = read_response(&mut stream).unwrap();
        assert_eq!(resp.status, 400);

        // The server still serves after the bad client.
        let resp = roundtrip(addr, "GET", "/healthz", "");
        assert_eq!(resp.status, 200);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }
}
