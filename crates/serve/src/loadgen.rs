//! Closed-loop deterministic load generator for the serving daemon.
//!
//! Each worker runs a closed loop — connect, send, await the full
//! response, record, repeat — so offered load adapts to service rate
//! instead of overrunning it (open-loop generators measure queueing
//! collapse, not the server). Request *contents* are deterministic: each
//! worker derives a ChaCha8 stream from `(seed, worker index)`, so two
//! runs with the same seed offer the same request mix in the same
//! per-worker order; only timing differs.
//!
//! The mix interleaves cheap `/v1/model/*` calls with a small rotating
//! family of `/v1/sweep/point` configurations — few enough distinct
//! sweeps that the server's result cache and single-flight layer do
//! real work during a run.
//!
//! Two robustness features ride on the same deterministic streams:
//!
//! * **Retry with jittered exponential backoff** — `503` responses and
//!   transport failures are retried up to `max_retries` times, honoring
//!   the server's `Retry-After` hint; the report tallies `retries` and
//!   `gave_up` so shedding behavior is measurable.
//! * **Chaos mode** (`--chaos`) — a fraction of worker iterations
//!   misbehave on purpose (connect-and-drop, mid-request stalls,
//!   half-closes, garbage bytes) to prove the server survives hostile
//!   clients while continuing to serve the well-behaved ones.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use onion_routing::{ExperimentOptions, ProtocolConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use crate::http::{read_response, write_request};

/// Version of the [`LoadReport`] JSON shape. Bump when fields change
/// incompatibly so downstream tooling can dispatch on `schema`.
///
/// Schema 2 added `retries`, `gave_up`, and `chaos_injected`.
pub const LOAD_REPORT_SCHEMA: u32 = 2;

/// Retry backoff delays (and `Retry-After` hints) are capped here so a
/// bounded-duration run cannot stall on one unlucky request.
const BACKOFF_CAP_MS: f64 = 2_000.0;

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target `host:port`.
    pub addr: String,
    /// Where the CLI's `--metrics-out` JSONL is going, if anywhere;
    /// recorded verbatim in the report so a run's artifacts
    /// cross-reference each other.
    pub metrics_out: Option<String>,
    /// Concurrent closed-loop workers.
    pub workers: usize,
    /// Wall-clock run length in seconds.
    pub duration_secs: f64,
    /// Fraction of requests that are sweep requests (`0.0..=1.0`).
    pub sweep_share: f64,
    /// Base seed for the deterministic request streams.
    pub seed: u64,
    /// Send `POST /v1/admin/shutdown` after the run (CI teardown).
    pub shutdown_after: bool,
    /// Retries per request on `503` or transport failure.
    pub max_retries: u32,
    /// Base backoff delay in milliseconds (doubled per attempt,
    /// jittered, capped at 2 s, floored by the server's `Retry-After`).
    pub backoff_base_ms: u64,
    /// Inject hostile client behavior (drops, stalls, half-closes,
    /// garbage) alongside the normal mix.
    pub chaos: bool,
    /// Fraction of worker iterations that misbehave when `chaos` is on.
    pub chaos_share: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7070".to_string(),
            metrics_out: None,
            workers: 2,
            duration_secs: 10.0,
            sweep_share: 0.1,
            seed: 1,
            shutdown_after: false,
            max_retries: 3,
            backoff_base_ms: 50,
            chaos: false,
            chaos_share: 0.25,
        }
    }
}

/// Latency summary for one request class, in milliseconds.
#[derive(Clone, Debug, Serialize)]
pub struct ClassStats {
    /// Requests of this class that completed with any HTTP status.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 90th-percentile latency.
    pub p90_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

/// The final report (also what `--report` writes as JSON).
#[derive(Clone, Debug, Serialize)]
pub struct LoadReport {
    /// Report shape version ([`LOAD_REPORT_SCHEMA`]).
    pub schema: u32,
    /// Target address.
    pub addr: String,
    /// The `--metrics-out` JSONL path active during the run, if any.
    pub metrics_out: Option<String>,
    /// Worker count.
    pub workers: usize,
    /// Requested run length (seconds).
    pub duration_secs: f64,
    /// Actually elapsed wall clock (seconds).
    pub elapsed_secs: f64,
    /// Base seed of the deterministic request streams.
    pub seed: u64,
    /// Requested sweep share.
    pub sweep_share: f64,
    /// Requests attempted (including failures).
    pub total: u64,
    /// Requests answered 2xx.
    pub ok: u64,
    /// Requests shed by backpressure (503).
    pub rejected: u64,
    /// Transport failures or unexpected (non-2xx, non-503) statuses.
    pub failed: u64,
    /// Retry attempts across all requests (each request counts once
    /// toward `total` regardless of how many attempts it took).
    pub retries: u64,
    /// Requests still shed or failing after the full retry budget.
    pub gave_up: u64,
    /// Hostile-client injections performed in chaos mode (not counted
    /// in `total`; chaos iterations expect no response).
    pub chaos_injected: u64,
    /// Completed requests per elapsed second.
    pub throughput_rps: f64,
    /// Response-status tallies keyed by status code.
    pub statuses: BTreeMap<String, u64>,
    /// Latency summaries per request class.
    pub classes: BTreeMap<String, ClassStats>,
}

/// One worker's tallies; merged after the run.
#[derive(Default)]
struct WorkerTally {
    total: u64,
    ok: u64,
    rejected: u64,
    failed: u64,
    retries: u64,
    gave_up: u64,
    chaos_injected: u64,
    statuses: BTreeMap<String, u64>,
    latency: BTreeMap<&'static str, obs::Histogram>,
}

impl WorkerTally {
    fn merge(&mut self, other: &WorkerTally) {
        self.total += other.total;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.failed += other.failed;
        self.retries += other.retries;
        self.gave_up += other.gave_up;
        self.chaos_injected += other.chaos_injected;
        for (k, v) in &other.statuses {
            *self.statuses.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.latency {
            self.latency.entry(k).or_default().merge(h);
        }
    }
}

/// One request recipe: endpoint class, path, and body.
struct Recipe {
    class: &'static str,
    path: &'static str,
    body: String,
}

/// Draws the next deterministic request for this worker.
fn next_recipe(rng: &mut ChaCha8Rng, sweep_share: f64) -> Recipe {
    if rng.gen::<f64>() < sweep_share {
        // A small rotating family of sweep configurations: enough
        // variety to exercise cache keys, few enough that hits happen.
        let deadline = [360.0, 720.0, 1080.0][rng.gen_range(0..3usize)];
        let seed = [7u64, 11, 13][rng.gen_range(0..3usize)];
        let cfg = ProtocolConfig {
            deadline: contact_graph::TimeDelta::new(deadline),
            ..ProtocolConfig::table2_defaults()
        };
        let opts = ExperimentOptions {
            messages: 5,
            realizations: 2,
            seed,
            ..ExperimentOptions::default()
        };
        let body = format!(
            "{{\"config\":{},\"opts\":{}}}",
            serde_json::to_string(&cfg).expect("config serializes"),
            serde_json::to_string(&opts).expect("opts serializes"),
        );
        return Recipe {
            class: "sweep",
            path: "/v1/sweep/point",
            body,
        };
    }
    match rng.gen_range(0..5u32) {
        0 => Recipe {
            class: "model",
            path: "/v1/model/delivery",
            body: format!(
                "{{\"deadline\":{},\"onions\":{}}}",
                [180.0, 360.0, 1080.0][rng.gen_range(0..3usize)],
                rng.gen_range(1..5usize),
            ),
        },
        1 => Recipe {
            class: "model",
            path: "/v1/model/cost",
            body: format!(
                "{{\"onions\":{},\"copies\":{}}}",
                rng.gen_range(1..6usize),
                rng.gen_range(1..4u32),
            ),
        },
        2 => Recipe {
            class: "model",
            path: "/v1/model/traceable",
            body: format!("{{\"compromised\":{}}}", rng.gen_range(1..50usize)),
        },
        3 => Recipe {
            class: "model",
            path: "/v1/model/anonymity",
            body: format!("{{\"compromised\":{}}}", rng.gen_range(1..50usize)),
        },
        _ => Recipe {
            class: "health",
            path: "/healthz",
            body: String::new(),
        },
    }
}

/// Issues one request; returns the HTTP status and any `Retry-After`
/// hint, or `Err` on transport failure.
fn issue(addr: &str, recipe: &Recipe) -> Result<(u16, Option<u32>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let method = if recipe.path == "/healthz" {
        "GET"
    } else {
        "POST"
    };
    write_request(&mut stream, method, recipe.path, &recipe.body)
        .map_err(|e| format!("write: {e}"))?;
    let resp = read_response(&mut stream).map_err(|e| format!("read: {e}"))?;
    Ok((resp.status, resp.retry_after))
}

/// The delay before retry number `attempt` (1-based): jittered
/// exponential backoff from `base_ms`, floored by the server's
/// `Retry-After` hint, capped at [`BACKOFF_CAP_MS`]. Deterministic
/// given the worker's rng state.
fn backoff_delay(
    rng: &mut ChaCha8Rng,
    attempt: u32,
    base_ms: u64,
    retry_after: Option<u32>,
) -> Duration {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(16).saturating_sub(1)) as f64;
    let jittered = (exp * (0.5 + rng.gen::<f64>())).min(BACKOFF_CAP_MS);
    let hinted = retry_after.map_or(0.0, |s| f64::from(s) * 1_000.0);
    Duration::from_millis(jittered.max(hinted).min(BACKOFF_CAP_MS) as u64)
}

/// One hostile-client injection: the server must shrug these off
/// without panicking or stalling a worker slot. Returns the op name
/// for the status tally.
fn inject_chaos(addr: &str, rng: &mut ChaCha8Rng) -> &'static str {
    let op = rng.gen_range(0..4u32);
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return "chaos_connect_failed";
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    match op {
        // Connect and vanish before sending a byte.
        0 => "chaos_drop",
        // Stall mid-request-line, then disappear.
        1 => {
            let _ = stream.write_all(b"POST /v1/model/del");
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(u64::from(rng.gen_range(5..40u32))));
            "chaos_stall"
        }
        // Send a full request but half-close the write side early.
        2 => {
            let _ = write_request(&mut stream, "GET", "/healthz", "");
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
            "chaos_half_close"
        }
        // Pure garbage bytes.
        _ => {
            let mut junk = vec![0u8; rng.gen_range(1..200usize)];
            for b in &mut junk {
                *b = rng.gen::<u8>();
            }
            let _ = stream.write_all(&junk);
            let _ = stream.flush();
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
            "chaos_garbage"
        }
    }
}

fn worker(addr: &str, cfg: &LoadgenConfig, index: usize, deadline: Instant) -> WorkerTally {
    // Domain-separate the per-worker streams: identical seeds with
    // different indices must not produce identical request sequences.
    let mut rng =
        ChaCha8Rng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut tally = WorkerTally::default();
    while Instant::now() < deadline {
        if cfg.chaos && rng.gen::<f64>() < cfg.chaos_share {
            let op = inject_chaos(addr, &mut rng);
            tally.chaos_injected += 1;
            *tally.statuses.entry(op.to_string()).or_insert(0) += 1;
            continue;
        }
        let recipe = next_recipe(&mut rng, cfg.sweep_share);
        let started = Instant::now();
        tally.total += 1;
        // Attempt loop: retry `503`s and transport failures with
        // backoff until the budget or the run deadline runs out. Only
        // the *final* outcome classifies the request, so
        // `ok + rejected + failed == total` holds at any retry budget.
        let mut attempt = 0u32;
        let outcome = loop {
            let outcome = issue(addr, &recipe);
            let (retryable, retry_after) = match &outcome {
                Ok((status, retry_after)) => (*status == 503, *retry_after),
                Err(_) => (true, None),
            };
            if !retryable || attempt >= cfg.max_retries {
                break outcome;
            }
            let delay = backoff_delay(&mut rng, attempt + 1, cfg.backoff_base_ms, retry_after);
            if Instant::now() + delay >= deadline {
                // Not enough run time left to honor the backoff.
                break outcome;
            }
            std::thread::sleep(delay);
            attempt += 1;
            tally.retries += 1;
        };
        match outcome {
            Ok((status, _)) => {
                let secs = started.elapsed().as_secs_f64();
                tally.latency.entry(recipe.class).or_default().record(secs);
                *tally.statuses.entry(status.to_string()).or_insert(0) += 1;
                match status {
                    200..=299 => tally.ok += 1,
                    503 => {
                        tally.rejected += 1;
                        if attempt >= cfg.max_retries {
                            tally.gave_up += 1;
                        }
                    }
                    _ => tally.failed += 1,
                }
            }
            Err(_) => {
                tally.failed += 1;
                if attempt >= cfg.max_retries {
                    tally.gave_up += 1;
                }
                *tally.statuses.entry("error".to_string()).or_insert(0) += 1;
            }
        }
    }
    tally
}

/// Runs the closed-loop load test and returns the merged report.
///
/// # Errors
///
/// Returns an error when the configuration is unusable (no workers,
/// non-positive duration, sweep share outside `[0, 1]`).
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadReport, String> {
    if cfg.workers == 0 {
        return Err("loadgen needs at least one worker".to_string());
    }
    if !cfg.duration_secs.is_finite() || cfg.duration_secs <= 0.0 {
        return Err("loadgen duration must be positive".to_string());
    }
    if !(0.0..=1.0).contains(&cfg.sweep_share) {
        return Err("sweep share must be within 0..=1".to_string());
    }
    if !(0.0..=1.0).contains(&cfg.chaos_share) {
        return Err("chaos share must be within 0..=1".to_string());
    }
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(cfg.duration_secs);
    let mut merged = WorkerTally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|i| scope.spawn(move || worker(&cfg.addr, cfg, i, deadline)))
            .collect();
        for h in handles {
            merged.merge(&h.join().expect("loadgen worker panicked"));
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    if cfg.shutdown_after {
        let recipe = Recipe {
            class: "admin",
            path: "/v1/admin/shutdown",
            body: String::new(),
        };
        match issue(&cfg.addr, &recipe) {
            Ok((status, _)) => obs::info!("loadgen", "shutdown request answered {status}"),
            Err(e) => obs::warn!("loadgen", "shutdown request failed: {e}"),
        }
    }

    let classes = merged
        .latency
        .iter()
        .map(|(class, hist)| {
            let ms = |v: Option<f64>| v.map_or(0.0, |s| s * 1e3);
            (
                (*class).to_string(),
                ClassStats {
                    count: hist.count(),
                    mean_ms: ms(hist.mean()),
                    p50_ms: ms(hist.quantile(0.50)),
                    p90_ms: ms(hist.quantile(0.90)),
                    p99_ms: ms(hist.quantile(0.99)),
                    max_ms: ms(hist.max()),
                },
            )
        })
        .collect();
    Ok(LoadReport {
        schema: LOAD_REPORT_SCHEMA,
        addr: cfg.addr.clone(),
        metrics_out: cfg.metrics_out.clone(),
        workers: cfg.workers,
        duration_secs: cfg.duration_secs,
        elapsed_secs: elapsed,
        seed: cfg.seed,
        sweep_share: cfg.sweep_share,
        total: merged.total,
        ok: merged.ok,
        rejected: merged.rejected,
        failed: merged.failed,
        retries: merged.retries,
        gave_up: merged.gave_up,
        chaos_injected: merged.chaos_injected,
        throughput_rps: if elapsed > 0.0 {
            (merged.ok + merged.rejected + merged.failed) as f64 / elapsed
        } else {
            0.0
        },
        statuses: merged.statuses,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let bad = LoadgenConfig {
            workers: 0,
            ..LoadgenConfig::default()
        };
        assert!(run_loadgen(&bad).is_err());
        let bad = LoadgenConfig {
            duration_secs: 0.0,
            ..LoadgenConfig::default()
        };
        assert!(run_loadgen(&bad).is_err());
        let bad = LoadgenConfig {
            sweep_share: 1.5,
            ..LoadgenConfig::default()
        };
        assert!(run_loadgen(&bad).is_err());
        let bad = LoadgenConfig {
            chaos_share: -0.1,
            ..LoadgenConfig::default()
        };
        assert!(run_loadgen(&bad).is_err());
    }

    #[test]
    fn backoff_grows_honors_retry_after_and_caps() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Attempt 1 from a 50 ms base: within [25, 100] ms.
        let d1 = backoff_delay(&mut rng, 1, 50, None);
        assert!(d1 >= Duration::from_millis(25) && d1 <= Duration::from_millis(100));
        // A Retry-After hint floors the delay.
        let hinted = backoff_delay(&mut rng, 1, 50, Some(1));
        assert!(hinted >= Duration::from_millis(1_000));
        // Deep attempts and huge hints both cap at 2 s.
        assert!(backoff_delay(&mut rng, 30, 50, None) <= Duration::from_millis(2_000));
        assert!(backoff_delay(&mut rng, 1, 50, Some(60)) == Duration::from_millis(2_000));
        // Deterministic given identical rng state.
        let mut a = ChaCha8Rng::seed_from_u64(4);
        let mut b = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(
            backoff_delay(&mut a, 2, 50, None),
            backoff_delay(&mut b, 2, 50, None)
        );
    }

    #[test]
    fn request_streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let ra = next_recipe(&mut a, 0.3);
            let rb = next_recipe(&mut b, 0.3);
            assert_eq!(ra.path, rb.path);
            assert_eq!(ra.body, rb.body);
        }
    }

    #[test]
    fn different_workers_get_different_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1 ^ 0u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut b = ChaCha8Rng::seed_from_u64(1 ^ 1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seq_a: Vec<String> = (0..20).map(|_| next_recipe(&mut a, 0.2).body).collect();
        let seq_b: Vec<String> = (0..20).map(|_| next_recipe(&mut b, 0.2).body).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn loadgen_against_a_live_server_has_no_failures() {
        let server = crate::server::Server::bind(&crate::server::ServeConfig {
            workers: 2,
            ..crate::server::ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let report = run_loadgen(&LoadgenConfig {
            addr,
            workers: 2,
            duration_secs: 1.0,
            sweep_share: 0.0, // models only: keep the unit test fast
            seed: 3,
            ..LoadgenConfig::default()
        })
        .unwrap();
        handle.shutdown();
        runner.join().unwrap().unwrap();

        assert!(report.total > 0);
        assert_eq!(report.failed, 0, "statuses: {:?}", report.statuses);
        assert_eq!(report.ok + report.rejected, report.total);
        assert!(report.throughput_rps > 0.0);
        assert!(report.classes.contains_key("model"));
        assert_eq!(report.schema, LOAD_REPORT_SCHEMA);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"throughput_rps\""));
        assert!(json.contains("\"schema\":2"));
        assert!(json.contains("\"retries\""));
        assert!(json.contains("\"gave_up\""));
    }

    #[test]
    fn chaos_mode_leaves_the_server_serving() {
        let server = crate::server::Server::bind(&crate::server::ServeConfig {
            workers: 2,
            read_timeout_secs: 1.0,
            ..crate::server::ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let report = run_loadgen(&LoadgenConfig {
            addr: addr.clone(),
            workers: 2,
            duration_secs: 1.5,
            sweep_share: 0.0,
            seed: 8,
            chaos: true,
            chaos_share: 0.5,
            ..LoadgenConfig::default()
        })
        .unwrap();

        assert!(report.chaos_injected > 0, "chaos ops must fire at 50%");
        assert_eq!(report.ok + report.rejected + report.failed, report.total);
        // Well-behaved requests still succeed around the chaos.
        assert!(report.ok > 0, "statuses: {:?}", report.statuses);
        // And the server is still healthy afterwards.
        let recipe = Recipe {
            class: "health",
            path: "/healthz",
            body: String::new(),
        };
        let (status, _) = issue(&addr, &recipe).unwrap();
        assert_eq!(status, 200);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }
}
