//! Crash-safe, disk-backed response store: the durable second tier
//! beneath the in-memory [`ShardedLru`](crate::cache::ShardedLru).
//!
//! The format is a single append-only record log (`store.log` inside
//! the store directory):
//!
//! ```text
//! magic:  "ODTNSTR1"                                     (8 bytes)
//! record: len:u32le ‖ crc32:u32le ‖ fingerprint ‖ body   (repeated)
//! ```
//!
//! where the record payload is `fp_len:u16le ‖ fingerprint bytes ‖
//! body bytes`, `len` is the payload length, and `crc32` is the IEEE
//! CRC-32 of the payload. Keys are the serving layer's canonical
//! [`Checkpoint::fingerprint`](onion_routing::Checkpoint) hex digests;
//! values are finished JSON response bodies (or single sweep rows).
//!
//! Durability model (DESIGN.md §4j):
//!
//! * **Appends are flushed record-at-a-time**, so a `kill -9` mid-write
//!   loses at most the record in flight.
//! * **Recovery is a single scan on open** that rebuilds the in-memory
//!   fingerprint → offset index. A torn tail (fewer bytes than the
//!   header or payload promise) is truncated away, exactly like
//!   `onion_routing::checkpoint` truncates a torn last line. A record
//!   whose CRC does not match is *skipped and counted* — it stays on
//!   disk until the next compaction but is never served
//!   (`store_records_quarantined` gauge).
//! * **Later records supersede earlier ones** for the same fingerprint;
//!   the index keeps the newest offset.
//! * **Oldest-first compaction under a byte budget**: when an append
//!   would push the log over `budget_bytes`, live records are rewritten
//!   newest-preserving into a fresh log (dropping superseded,
//!   quarantined, and — oldest first — enough live records to fit) and
//!   the new log atomically renamed into place.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Leading magic of a store log; refuses to scan foreign files.
pub const STORE_MAGIC: &[u8; 8] = b"ODTNSTR1";

/// File name of the record log inside the store directory.
pub const STORE_LOG: &str = "store.log";

/// Upper bound on one record payload: the serving layer's body cap plus
/// fingerprint overhead. A `len` beyond this is framing corruption, not
/// a large record.
const MAX_PAYLOAD_BYTES: usize = 4 * 1024 * 1024 + 2 + 256;

/// Record header size: `len:u32le ‖ crc32:u32le`.
const HEADER_BYTES: u64 = 8;

/// A failure opening or using the store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The file exists but is not a store log (bad magic).
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Point-in-time store health, surfaced as `/metricsz` gauges.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStatus {
    /// Live (servable) records in the index.
    pub records: u64,
    /// Current log file length in bytes.
    pub bytes: u64,
    /// Bad-CRC records skipped since open (recovery scan + reads).
    pub quarantined: u64,
    /// Torn tail bytes truncated by the recovery scan.
    pub truncated_bytes: u64,
    /// Live records evicted by budget compactions since open.
    pub evicted: u64,
    /// Compactions performed since open.
    pub compactions: u64,
}

/// Location of the newest record for a fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Loc {
    /// Offset of the record header within the log.
    offset: u64,
    /// Payload length (excludes the 8-byte header).
    len: u32,
}

struct Inner {
    file: File,
    path: PathBuf,
    index: HashMap<String, Loc>,
    /// Append order of puts (may contain superseded duplicates; an
    /// entry is live iff `index[fp]` still points at its record).
    order: VecDeque<(String, Loc)>,
    bytes: u64,
    quarantined: u64,
    truncated_bytes: u64,
    evicted: u64,
    compactions: u64,
}

/// The disk-backed fingerprint → response-body store. All operations
/// are serialized behind one mutex: store traffic is LRU-miss traffic,
/// which is rare and already sweep-compute bound.
pub struct ResponseStore {
    inner: Mutex<Inner>,
    budget: u64,
}

impl ResponseStore {
    /// Opens (creating if needed) the store in `dir` with a log byte
    /// budget, running the recovery scan described in the module docs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when an existing log does not start with [`STORE_MAGIC`].
    pub fn open(dir: &Path, budget_bytes: u64) -> Result<ResponseStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_LOG);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        if data.is_empty() {
            file.write_all(STORE_MAGIC)?;
            file.flush()?;
            data.extend_from_slice(STORE_MAGIC);
        } else if data.len() < STORE_MAGIC.len() || &data[..STORE_MAGIC.len()] != STORE_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "{} does not start with the store magic",
                path.display()
            )));
        }

        let mut index = HashMap::new();
        let mut order = VecDeque::new();
        let mut quarantined = 0u64;
        let mut offset = STORE_MAGIC.len() as u64;
        let valid_len = loop {
            let remaining = data.len() as u64 - offset;
            if remaining == 0 {
                break offset;
            }
            if remaining < HEADER_BYTES {
                break offset; // torn header
            }
            let at = offset as usize;
            let len = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4 bytes"));
            if (len as usize) < 3 || len as usize > MAX_PAYLOAD_BYTES {
                // A nonsensical length destroys framing for everything
                // after it; treat the rest of the file as torn.
                break offset;
            }
            if remaining < HEADER_BYTES + len as u64 {
                break offset; // torn payload
            }
            let payload = &data[at + 8..at + 8 + len as usize];
            let loc = Loc { offset, len };
            offset += HEADER_BYTES + len as u64;
            if crc32(payload) != crc {
                quarantined += 1;
                continue;
            }
            match parse_payload(payload) {
                Some((fp, _body)) => {
                    let fp = fp.to_string();
                    index.insert(fp.clone(), loc);
                    order.push_back((fp, loc));
                }
                None => quarantined += 1,
            }
        };

        let truncated_bytes = data.len() as u64 - valid_len;
        if truncated_bytes > 0 {
            file.set_len(valid_len)?;
            obs::warn!(
                "serve::store",
                "truncated {truncated_bytes} torn byte(s) from {}",
                path.display()
            );
        }
        obs::info!(
            "serve::store",
            "recovered {} record(s) ({valid_len} bytes) from {}; quarantined {quarantined} \
             bad-CRC record(s), truncated {truncated_bytes} torn byte(s)",
            index.len(),
            path.display()
        );

        let store = ResponseStore {
            inner: Mutex::new(Inner {
                file,
                path,
                index,
                order,
                bytes: valid_len,
                quarantined,
                truncated_bytes,
                evicted: 0,
                compactions: 0,
            }),
            budget: budget_bytes,
        };
        store.sync_gauges();
        Ok(store)
    }

    /// Looks up the newest record for `fingerprint`, re-verifying its
    /// CRC on the way out. A record that fails verification is dropped
    /// from the index and counted as quarantined.
    pub fn get(&self, fingerprint: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap();
        let loc = *inner.index.get(fingerprint)?;
        match read_record(&mut inner.file, loc) {
            Ok((fp, body)) if fp == fingerprint => Some(body),
            _ => {
                inner.index.remove(fingerprint);
                inner.quarantined += 1;
                obs::warn!(
                    "serve::store",
                    "quarantined unreadable record for {fingerprint} at offset {}",
                    loc.offset
                );
                drop(inner);
                self.sync_gauges();
                None
            }
        }
    }

    /// Appends a record and flushes it before returning, compacting
    /// first when the budget would be exceeded. A record too large for
    /// the whole budget is skipped with a warning rather than thrashing
    /// the log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure; the in-memory index is only
    /// updated after the record is fully on disk.
    pub fn put(&self, fingerprint: &str, body: &str) -> Result<(), StoreError> {
        let record = encode_record(fingerprint, body);
        let mut inner = self.inner.lock().unwrap();
        if STORE_MAGIC.len() as u64 + record.len() as u64 > self.budget {
            obs::warn!(
                "serve::store",
                "record for {fingerprint} ({} bytes) exceeds the whole store budget ({}); not stored",
                record.len(),
                self.budget
            );
            return Ok(());
        }
        if inner.bytes + record.len() as u64 > self.budget {
            compact(&mut inner, self.budget.saturating_sub(record.len() as u64))?;
        }
        inner.file.seek(SeekFrom::End(0))?;
        inner.file.write_all(&record)?;
        inner.file.flush()?;
        let loc = Loc {
            offset: inner.bytes,
            len: (record.len() as u64 - HEADER_BYTES) as u32,
        };
        inner.bytes += record.len() as u64;
        inner.index.insert(fingerprint.to_string(), loc);
        inner.order.push_back((fingerprint.to_string(), loc));
        drop(inner);
        self.sync_gauges();
        Ok(())
    }

    /// Current health counters.
    pub fn status(&self) -> StoreStatus {
        let inner = self.inner.lock().unwrap();
        StoreStatus {
            records: inner.index.len() as u64,
            bytes: inner.bytes,
            quarantined: inner.quarantined,
            truncated_bytes: inner.truncated_bytes,
            evicted: inner.evicted,
            compactions: inner.compactions,
        }
    }

    /// Path of the record log.
    pub fn log_path(&self) -> PathBuf {
        self.inner.lock().unwrap().path.clone()
    }

    /// Mirrors store health into the global metrics registry.
    fn sync_gauges(&self) {
        let s = self.status();
        obs::gauge_set("serve.store_records", s.records as i64);
        obs::gauge_set("serve.store_bytes", s.bytes as i64);
        obs::gauge_set("serve.store_records_quarantined", s.quarantined as i64);
    }
}

/// Builds the on-disk bytes of one record.
fn encode_record(fingerprint: &str, body: &str) -> Vec<u8> {
    let fp = fingerprint.as_bytes();
    assert!(fp.len() <= u16::MAX as usize, "fingerprint too long");
    let mut payload = Vec::with_capacity(2 + fp.len() + body.len());
    payload.extend_from_slice(&(fp.len() as u16).to_le_bytes());
    payload.extend_from_slice(fp);
    payload.extend_from_slice(body.as_bytes());
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Splits a verified payload into `(fingerprint, body)`; `None` marks
/// the record quarantine-worthy (bad length prefix or non-UTF-8).
fn parse_payload(payload: &[u8]) -> Option<(&str, &str)> {
    if payload.len() < 2 {
        return None;
    }
    let fp_len = u16::from_le_bytes(payload[..2].try_into().expect("2 bytes")) as usize;
    if 2 + fp_len > payload.len() {
        return None;
    }
    let fp = std::str::from_utf8(&payload[2..2 + fp_len]).ok()?;
    let body = std::str::from_utf8(&payload[2 + fp_len..]).ok()?;
    Some((fp, body))
}

/// Reads and re-verifies one record off the log.
fn read_record(file: &mut File, loc: Loc) -> Result<(String, String), StoreError> {
    file.seek(SeekFrom::Start(loc.offset))?;
    let mut buf = vec![0u8; HEADER_BYTES as usize + loc.len as usize];
    file.read_exact(&mut buf)?;
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let payload = &buf[8..];
    if len != loc.len || crc32(payload) != crc {
        return Err(StoreError::Corrupt(format!(
            "record at offset {} failed verification",
            loc.offset
        )));
    }
    match parse_payload(payload) {
        Some((fp, body)) => Ok((fp.to_string(), body.to_string())),
        None => Err(StoreError::Corrupt(format!(
            "record at offset {} has an invalid payload",
            loc.offset
        ))),
    }
}

/// Rewrites live records into a fresh log, dropping superseded and
/// quarantined bytes, then — oldest first — evicting live records until
/// the result fits in `target` bytes. Atomic via rename.
fn compact(inner: &mut Inner, target: u64) -> Result<(), StoreError> {
    // Live records in append order (oldest first): an `order` entry is
    // live iff the index still points at exactly that record.
    let mut live: Vec<(String, Loc)> = Vec::new();
    let mut seen = HashSet::new();
    for (fp, loc) in inner.order.iter() {
        if inner.index.get(fp) == Some(loc) && seen.insert(fp.clone()) {
            live.push((fp.clone(), *loc));
        }
    }
    let record_size = |loc: &Loc| HEADER_BYTES + loc.len as u64;
    let mut total: u64 =
        STORE_MAGIC.len() as u64 + live.iter().map(|(_, l)| record_size(l)).sum::<u64>();
    let mut evicted = 0u64;
    let mut keep_from = 0usize;
    while keep_from < live.len() && total > target {
        total -= record_size(&live[keep_from].1);
        keep_from += 1;
        evicted += 1;
    }
    let kept = &live[keep_from..];

    let tmp_path = inner.path.with_extension("log.tmp");
    let mut tmp = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp_path)?;
    tmp.write_all(STORE_MAGIC)?;
    let mut new_index = HashMap::with_capacity(kept.len());
    let mut new_order = VecDeque::with_capacity(kept.len());
    let mut offset = STORE_MAGIC.len() as u64;
    for (fp, loc) in kept {
        let (_, body) = read_record(&mut inner.file, *loc)?;
        let record = encode_record(fp, &body);
        tmp.write_all(&record)?;
        let new_loc = Loc {
            offset,
            len: (record.len() as u64 - HEADER_BYTES) as u32,
        };
        offset += record.len() as u64;
        new_index.insert(fp.clone(), new_loc);
        new_order.push_back((fp.clone(), new_loc));
    }
    tmp.flush()?;
    std::fs::rename(&tmp_path, &inner.path)?;
    obs::info!(
        "serve::store",
        "compacted {} to {} live record(s) ({offset} bytes), evicted {evicted} oldest",
        inner.path.display(),
        kept.len()
    );
    inner.file = tmp;
    inner.index = new_index;
    inner.order = new_order;
    inner.bytes = offset;
    inner.evicted += evicted;
    inner.compactions += 1;
    Ok(())
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the `zlib`/`binascii.crc32` polynomial), so external
/// tooling can frame records without this crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut state = !0u32;
    for &b in bytes {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch(PathBuf);
    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    impl Scratch {
        fn new(name: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!("onion-dtn-store-{name}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    const BUDGET: u64 = 1 << 20;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check value — matches zlib and
        // Python's binascii.crc32, which the CI chaos job relies on.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn put_get_roundtrips_and_survives_reopen() {
        let scratch = Scratch::new("roundtrip");
        let store = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        assert_eq!(store.get("k1"), None);
        store.put("k1", "{\"v\":1}").unwrap();
        store.put("k2", "{\"v\":2}").unwrap();
        assert_eq!(store.get("k1").unwrap(), "{\"v\":1}");
        assert_eq!(store.get("k2").unwrap(), "{\"v\":2}");
        drop(store);

        let reopened = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        assert_eq!(reopened.get("k1").unwrap(), "{\"v\":1}");
        assert_eq!(reopened.get("k2").unwrap(), "{\"v\":2}");
        let s = reopened.status();
        assert_eq!(s.records, 2);
        assert_eq!(s.quarantined, 0);
        assert_eq!(s.truncated_bytes, 0);
    }

    #[test]
    fn newer_records_supersede_older_ones() {
        let scratch = Scratch::new("supersede");
        let store = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        store.put("k", "old").unwrap();
        store.put("k", "new").unwrap();
        assert_eq!(store.get("k").unwrap(), "new");
        drop(store);
        let reopened = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        assert_eq!(reopened.get("k").unwrap(), "new");
        assert_eq!(reopened.status().records, 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let scratch = Scratch::new("torn");
        let store = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        store.put("whole", "survives").unwrap();
        let log = store.log_path();
        let clean_len = store.status().bytes;
        drop(store);

        // Simulate a kill -9 mid-append: a header promising more
        // payload than exists.
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&500u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"only a few bytes").unwrap();
        drop(f);

        let reopened = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        assert_eq!(reopened.get("whole").unwrap(), "survives");
        let s = reopened.status();
        assert_eq!(s.records, 1);
        assert_eq!(
            s.bytes, clean_len,
            "tail truncated back to the last whole record"
        );
        assert!(s.truncated_bytes > 0);
        assert_eq!(s.quarantined, 0);

        // And the store keeps working after recovery.
        reopened.put("after", "recovery").unwrap();
        assert_eq!(reopened.get("after").unwrap(), "recovery");
    }

    #[test]
    fn bad_crc_records_are_skipped_and_counted() {
        let scratch = Scratch::new("badcrc");
        let store = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        store.put("good", "kept").unwrap();
        let log = store.log_path();
        drop(store);

        // A complete, well-framed record whose CRC is wrong.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u16.to_le_bytes());
        payload.extend_from_slice(b"bad");
        payload.extend_from_slice(b"\"value\"");
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(&payload).unwrap();
        // Followed by another good record, proving the scan resyncs.
        drop(f);

        let reopened = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        let s = reopened.status();
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.truncated_bytes, 0);
        assert_eq!(reopened.get("good").unwrap(), "kept");
        assert_eq!(reopened.get("bad"), None);

        // New appends after the quarantined record still index correctly.
        reopened.put("later", "fine").unwrap();
        drop(reopened);
        let again = ResponseStore::open(&scratch.0, BUDGET).unwrap();
        assert_eq!(again.get("later").unwrap(), "fine");
        assert_eq!(again.status().quarantined, 1);
    }

    #[test]
    fn foreign_files_are_refused() {
        let scratch = Scratch::new("foreign");
        std::fs::write(scratch.0.join(STORE_LOG), b"definitely not a store log").unwrap();
        assert!(matches!(
            ResponseStore::open(&scratch.0, BUDGET),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn budget_compaction_evicts_oldest_first() {
        let scratch = Scratch::new("budget");
        // Each record is ~8 + 2 + 2 + 100 bytes; budget fits ~4 of them.
        let store = ResponseStore::open(&scratch.0, 500).unwrap();
        let body = "x".repeat(100);
        for i in 0..8 {
            store.put(&format!("k{i}"), &body).unwrap();
        }
        let s = store.status();
        assert!(s.bytes <= 500, "log stays within budget, got {}", s.bytes);
        assert!(s.compactions >= 1);
        assert!(s.evicted >= 1);
        // The newest record always survives; the oldest is gone.
        assert_eq!(store.get("k7").unwrap(), body);
        assert_eq!(store.get("k0"), None);
        drop(store);

        // Compaction output is itself a valid, recoverable log.
        let reopened = ResponseStore::open(&scratch.0, 500).unwrap();
        assert_eq!(reopened.get("k7").unwrap(), body);
        assert_eq!(reopened.status().quarantined, 0);
        assert_eq!(reopened.status().truncated_bytes, 0);
    }

    #[test]
    fn compaction_drops_superseded_bytes_without_evicting_live_records() {
        let scratch = Scratch::new("compact-dead");
        let store = ResponseStore::open(&scratch.0, 10_000).unwrap();
        // Twelve ~1 KiB generations of the same key: only the newest is
        // live, so the log fills with superseded bytes and compaction
        // fires — but the live set (one record) is tiny, so nothing is
        // evicted.
        let mut last = String::new();
        for i in 0..12 {
            last = format!("generation {i}{}", "p".repeat(1000));
            store.put("k", &last).unwrap();
        }
        let s = store.status();
        assert!(s.compactions >= 1);
        assert!(s.bytes <= 10_000);
        assert_eq!(s.records, 1);
        assert_eq!(s.evicted, 0, "live records must survive compaction");
        assert_eq!(store.get("k").unwrap(), last);
    }

    #[test]
    fn oversized_record_is_skipped_not_stored() {
        let scratch = Scratch::new("oversize");
        let store = ResponseStore::open(&scratch.0, 64).unwrap();
        store.put("big", &"y".repeat(1000)).unwrap();
        assert_eq!(store.get("big"), None);
        assert_eq!(store.status().records, 0);
    }
}
