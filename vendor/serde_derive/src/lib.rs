//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's offline serde shim.
//!
//! Implemented directly over `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! actually derives on:
//!
//! * named-field structs → JSON objects;
//! * newtype structs (one unnamed field) → transparent inner value
//!   (matching real serde, which is what makes `NodeId`/`MessageId`
//!   usable as integer-like map keys);
//! * tuple structs with 2+ fields → arrays;
//! * unit structs → `null`;
//! * enums with unit / newtype / tuple variants → externally tagged
//!   (`"Variant"` or `{"Variant": ...}`), serde's default.
//!
//! Generic types and struct-variants are rejected with a compile error —
//! extend the parser before deriving on one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// `None` = unit, `Some(n)` = tuple variant with `n` fields.
    arity: Option<usize>,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`) starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated items in a field-list group, tracking
/// angle-bracket depth so `BTreeMap<K, V>` counts as one.
fn count_top_level_items(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        items -= 1; // trailing comma
    }
    items
}

/// Extracts the field names of a named-field struct body.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: tokens until a top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts the variants of an enum body.
fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let mut arity = None;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = Some(count_top_level_items(g));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "struct-variant `{name}` is not supported by the vendored serde_derive"
                ));
            }
            _ => {}
        }
        // Skip a discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde_derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_top_level_items(g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unsupported enum body {other:?}")),
        },
        other => Err(format!("cannot derive on `{other}` items")),
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Item::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct { arity, .. } => {
            let entries: Vec<String> = (0..*arity)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        None => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        Some(1) => format!(
                            "{name}::{vname}(ref __f0) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        Some(n) => {
                            let binders: Vec<String> =
                                (0..n).map(|idx| format!("ref __f{idx}")).collect();
                            let values: Vec<String> = (0..n)
                                .map(|idx| format!("::serde::Serialize::to_value(__f{idx})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(vec![{}]))])",
                                binders.join(", "),
                                values.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::new(\
                         \"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Object(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                         format!(\"expected object for {name}, found {{:?}}\", other))),\n\
                 }}",
                inits.join(", ")
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            let body = format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
            );
            (name, body)
        }
        Item::TupleStruct { name, arity } => {
            let parts: Vec<String> = (0..*arity)
                .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
                .collect();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                         format!(\"expected {arity}-array for {name}, found {{:?}}\", other))),\n\
                 }}",
                parts.join(", ")
            );
            (name, body)
        }
        Item::UnitStruct { name } => {
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                         format!(\"expected null for {name}, found {{:?}}\", other))),\n\
                 }}"
            );
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity.is_none())
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname})")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        None => None,
                        Some(1) => Some(format!(
                            "if let ::std::option::Option::Some(inner) = value.get(\"{vname}\") \
                             {{ return ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?)); }}"
                        )),
                        Some(n) => {
                            let parts: Vec<String> = (0..n)
                                .map(|idx| {
                                    format!("::serde::Deserialize::from_value(&items[{idx}])?")
                                })
                                .collect();
                            Some(format!(
                                "if let ::std::option::Option::Some(\
                                 ::serde::Value::Array(items)) = value.get(\"{vname}\") {{ \
                                 if items.len() == {n} {{ return ::std::result::Result::Ok(\
                                 {name}::{vname}({})); }} }}",
                                parts.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "if let ::serde::Value::Str(s) = value {{\n\
                     return match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown variant `{{}}` of {name}\", other))),\n\
                     }};\n\
                 }}\n\
                 {}\n\
                 ::std::result::Result::Err(::serde::DeError::new(\
                     format!(\"cannot deserialize {name} from {{:?}}\", value)))",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                payload_arms.join("\n")
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
