//! Vendored offline JSON serializer/deserializer over the workspace's
//! [`serde`] shim: [`to_string`] / [`to_string_pretty`] render a
//! [`serde::Value`] tree to JSON text, [`from_str`] parses JSON text back.
//!
//! Floats are printed with Rust's shortest-roundtrip formatting, so
//! `f64` values survive a serialize → parse cycle bit-exactly (the
//! `float_roundtrip` behaviour the workspace relies on for experiment
//! checkpoints).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` is Rust's shortest round-trip representation and is
            // valid JSON for finite values (always includes a `.` or `e`).
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) -> Result<()> {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(out, other)?,
    }
    Ok(())
}

/// Serializes `value` to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full character.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.error("bad char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("bad number"))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 128 {
            return Err(self.error("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(text: &'a str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<u32>("1").unwrap(), 1);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f64, 2.5, -3.25];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&text).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(7u64, vec![1u32, 2]);
        m.insert(9u64, vec![]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"7\":[1,2],\"9\":[]}");
        assert_eq!(from_str::<BTreeMap<u64, Vec<u32>>>(&text).unwrap(), m);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "he said \"hi\\\"\n\ttabbed\u{1F980}".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, f64)>>(&text).unwrap(), v);
    }
}
