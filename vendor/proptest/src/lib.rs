//! Vendored offline property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), [`Strategy`] with
//! `prop_map`, [`any`], integer/float range strategies,
//! [`collection::vec`] / [`collection::btree_set`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Case generation is fully deterministic: each test derives its RNG
//! stream from an FNV-1a hash of the test name plus the case index, so
//! failures reproduce across runs and machines. There is no shrinking —
//! a failing case reports its case index and seed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to [`Strategy::sample`] for each generated case.
pub type TestRng = StdRng;

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!`; it does not count
    /// toward the configured case total.
    Reject(String),
    /// A `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Result type returned by a `proptest!` body closure.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property test: repeatedly samples inputs and runs `f`
/// until `config.cases` cases pass, panicking on the first failure.
/// Deterministic in (`name`, `config.cases`).
pub fn run_test<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let max_rejects = (config.cases as u64).saturating_mul(64).max(1024);
    let mut passed = 0u32;
    let mut rejects = 0u64;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest `{name}`: too many `prop_assume!` rejections \
                         ({rejects} rejects for {passed} passing cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest `{name}` failed on case {case} (seed {seed:#018x}): {message}");
            }
        }
        case += 1;
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value from this strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`", driven by rand's `Standard`
/// distribution (uniform over the full domain for ints/bool/arrays).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen::<T>(rng)
    }
}

/// `any::<T>()` — generate arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Collection-size specification accepted by [`collection`] strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rand::Rng::gen_range(rng, self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategies for collections of values.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`. Duplicate draws are retried a bounded number of times;
    /// if the element domain is too small the set may come up short.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 50 + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments [`ProptestConfig::cases`]
/// times from the given strategies and runs the body; `prop_assert*` /
/// `prop_assume!` short-circuit a case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)) => {};
    (@with_config ($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $config;
            $crate::run_test(&__config, stringify!($name), |__rng| {
                $(let $arg_pat = $crate::Strategy::sample(&($arg_strategy), __rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking) so the harness can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Rejects the current case (it is re-drawn, not counted) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u32..1000, 3..=5);
        let mut a = <crate::TestRng as rand::SeedableRng>::seed_from_u64(42);
        let mut b = <crate::TestRng as rand::SeedableRng>::seed_from_u64(42);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_respect_bounds(x in 10u32..20, y in 0.5f64..2.0, z in 3u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert_eq!(z, 3);
        }

        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2..6),
            s in crate::collection::btree_set(0u32..100, 2..=6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() >= 2 && s.len() <= 6);
        }

        fn assume_filters(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_ne!(n % 2, 1);
        }

        fn map_applies(doubled in (0u32..50).prop_map(|n| n * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }
}
