//! Vendored ChaCha-based deterministic generators (`ChaCha8Rng`,
//! `ChaCha12Rng`, `ChaCha20Rng`) over the workspace's vendored `rand`
//! traits.
//!
//! The keystream is the RFC 7539 ChaCha block function (with the round
//! count lowered for the 8- and 12-round variants), keyed by the 32-byte
//! seed, with a 64-bit block counter and zero nonce. Output words are
//! served in block order, so the stream is a pure function of the seed —
//! the reproducibility anchor for every experiment in this workspace.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one ChaCha block with `rounds` rounds (must be even).
fn chacha_block(key_words: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865; // "expa"
    state[1] = 0x3320_646e; // "nd 3"
    state[2] = 0x7962_2d32; // "2-by"
    state[3] = 0x6b20_6574; // "te k"
    state[4..12].copy_from_slice(key_words);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;

    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    let mut bytes = [0u8; 4];
                    bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
                    *word = u32::from_le_bytes(bytes);
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                };
                rng.refill();
                rng
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the workspace's experiment RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_block_matches_rfc7539_structure() {
        // With a zero key and counter 0 the 20-round block must differ
        // from the raw initial state and be stable.
        let key = [0u32; 8];
        let one = chacha_block(&key, 0, 20);
        let two = chacha_block(&key, 0, 20);
        assert_eq!(one, two);
        assert_ne!(one[0], 0x6170_7865);
        // Different counters give different blocks.
        assert_ne!(chacha_block(&key, 1, 20), one);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            buckets[(u * 10.0) as usize] += 1;
        }
        for &count in &buckets {
            assert!((800..1200).contains(&count), "bucket {count}");
        }
    }
}
