//! Vendored offline micro-benchmark harness exposing the subset of the
//! `criterion` API this workspace uses: [`Criterion`] with
//! `sample_size` / `warm_up_time` / `measurement_time`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::throughput`] /
//! `bench_function` / `finish`, [`Bencher::iter`], [`Throughput`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is wall-clock via `std::time::Instant`: each benchmark warms
//! up for the configured duration, calibrates an iteration count so one
//! sample fits in `measurement_time / sample_size`, then reports the
//! fastest and mean per-iteration times across samples.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for callers that use `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units-processed-per-iteration annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark configuration and driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Accepted for CLI compatibility; this shim takes no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent `bench_function`s.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            result: None,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match bencher.result {
            Some(ref m) => println!("{label:<50} {}", m.render(self.throughput)),
            None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    pub fn finish(self) {}
}

struct Measurement {
    fastest_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Measurement {
    fn render(&self, throughput: Option<Throughput>) -> String {
        let mut out = format!(
            "time: [fastest {} mean {}] ({} samples x {} iters)",
            format_ns(self.fastest_ns),
            format_ns(self.mean_ns),
            self.samples,
            self.iters_per_sample
        );
        if let Some(t) = throughput {
            let (units, suffix) = match t {
                Throughput::Bytes(n) => (n as f64, "B/s"),
                Throughput::Elements(n) => (n as f64, "elem/s"),
            };
            if self.mean_ns > 0.0 {
                out.push_str(&format!(
                    " thrpt: {}{suffix}",
                    format_rate(units * 1e9 / self.mean_ns)
                ));
            }
        }
        out
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    config: Criterion,
    result: Option<Measurement>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates how many iterations fit in a sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed().as_nanos().max(1) as f64;
        let ns_per_iter_estimate = warm_elapsed / warm_iters as f64;

        let sample_budget_ns =
            self.config.measurement_time.as_nanos() as f64 / self.config.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / ns_per_iter_estimate) as u64).max(1);

        let mut fastest = f64::INFINITY;
        let mut total = 0.0f64;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            fastest = fastest.min(ns);
            total += ns;
        }
        self.result = Some(Measurement {
            fastest_ns: fastest,
            mean_ns: total / self.config.sample_size as f64,
            samples: self.config.sample_size,
            iters_per_sample,
        });
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target_a, target_b)` or
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn measures_a_cheap_routine() {
        let mut c = quick();
        let mut group = c.benchmark_group("test");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..64).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(plain_form, smoke_target);
    criterion_group! {
        name = config_form;
        config = quick();
        targets = smoke_target, smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.benchmark_group("smoke")
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macros_expand() {
        // The macros produce plain functions; just ensure they run.
        let _ = plain_form;
        config_form();
    }
}
