//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in offline containers with no crates-io access,
//! so the external `rand` crate is replaced by this shim implementing
//! exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits (object-safe core,
//!   extension methods `gen`, `gen_range`, `gen_bool`, `fill_bytes`);
//! * [`rngs::StdRng`] (xoshiro256++), [`rngs::mock::StepRng`], and
//!   [`thread_rng`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: every generator here is a pure function of its
//! seed; nothing reads OS entropy except [`SeedableRng::from_entropy`]
//! and [`thread_rng`], which are only used in doc examples.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type for fallible generation (kept for API compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random generation error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution of a generator.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (multiply-based,
    /// identical to `rand` 0.8's `Standard` for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    i64 => next_u64, isize => next_u64);

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A range argument accepted by [`Rng::gen_range`]. Generic over the
/// produced type `T` (rather than an associated type) so that the
/// expected result type drives integer-literal inference, matching the
/// real rand API: `let n: u32 = rng.gen_range(0..50)` works.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded integer sampling via 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is < 2^-64 per
/// draw, far below anything the simulations can resolve, and keeps every
/// draw exactly one `next_u64` call — important for reproducibility).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(span as u64, rng) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0,1]"
        );
        self.gen::<f64>() < p
    }

    /// Fills `dest` (any `[u8]`-like buffer) with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// `rand` 0.8 uses), then seeds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from wall-clock entropy (good enough for doc examples; all
    /// experiment paths seed explicitly).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn entropy_u64() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    // Mix in the address of a stack local for per-thread variation.
    let marker = 0u8;
    nanos ^ (&marker as *const u8 as u64).rotate_left(32)
}

/// SplitMix64: the seed-expansion PRNG (public because the workspace's
/// deterministic trial-seeding scheme reuses it).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts the sequence at `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's general-purpose seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; redirect it.
            if s == [0, 0, 0, 0] {
                let mut sm = SplitMix64::new(0xDEAD_BEEF);
                for word in &mut s {
                    *word = sm.next_u64();
                }
            }
            StdRng { s }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Yields `initial`, `initial + increment`, … as its `u64` stream.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the stepping generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// A fresh entropy-seeded generator (one per call; only doc examples and
/// default protocol glue use this).
pub fn thread_rng() -> rngs::StdRng {
    use rngs::StdRng;
    StdRng::seed_from_u64(entropy_u64())
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), matching `rand`'s trait of the
    /// same name.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution-style prelude pieces some code imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng, SplitMix64};

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 (reference from the SplitMix64
        // paper's public-domain implementation).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Deterministic: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn std_rng_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=5usize);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10u32);
        assert!(v < 10);
    }
}
