//! Vendored, dependency-free serialization framework exposing the
//! `serde`-shaped API surface this workspace uses.
//!
//! Instead of serde's visitor-based zero-copy model, this shim routes
//! everything through an owned [`Value`] tree (the "miniserde" approach):
//! [`Serialize`] renders a value into a [`Value`], [`Deserialize`] parses
//! one back out. `serde_json` (also vendored) converts between [`Value`]
//! and JSON text. That is exactly enough for the workspace's needs —
//! checkpointing experiment reports and configs — while building offline
//! with no proc-macro dependencies beyond the paired `serde_derive` shim.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used when the source was negative).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for readable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError {
    /// Human-readable description.
    pub message: String,
}

impl DeError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
///
/// The lifetime parameter exists only for signature compatibility with
/// bounds like `for<'de> Deserialize<'de>`; this owned-value shim never
/// borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Parses `Self` out of the value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Alias matching serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f)
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::new(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::new(format!(
                "expected array of {N}, found {other:?}"
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {LEN}-tuple, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Serializes a map key: strings pass through, integers become their
/// decimal representation (mirroring `serde_json`'s integer-key support).
fn key_to_string(value: &Value) -> Result<String, DeError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(DeError::new(format!("unsupported map key {other:?}"))),
    }
}

/// Re-interprets an object key for value-typed key deserialization.
fn key_from_string(key: &str) -> Value {
    if let Ok(u) = key.parse::<u64>() {
        Value::UInt(u)
    } else if let Ok(i) = key.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::Str(key.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .expect("map keys must serialize to strings or integers");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("map keys must serialize to strings or integers");
                (key, v.to_value())
            })
            .collect();
        // Sort for stable output: hash iteration order is unspecified.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);

        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);

        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_string());
        m.insert(1u64, "y".to_string());
        assert_eq!(
            BTreeMap::<u64, String>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn integer_map_keys_become_strings() {
        let mut m = BTreeMap::new();
        m.insert(12u64, 1u8);
        match m.to_value() {
            Value::Object(fields) => assert_eq!(fields[0].0, "12"),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
