//! Command-line interface for the onion-dtn experiment library.
//!
//! ```text
//! onion-dtn point   [--n 100] [--g 5] [--k 3] [--l 1] [--t 1080] [--c 10]
//!                   [--messages 25] [--realizations 5] [--seed 1] [--threads 0]
//! onion-dtn deadline-sweep [same flags; sweeps T over a log grid]
//! onion-dtn security-sweep [same flags; sweeps c from 1% to 50%]
//! onion-dtn fault-sweep    [same flags; sweeps fault intensity 0 -> 1]
//! onion-dtn trace (cambridge|infocom|PATH) [--t 3600]
//! onion-dtn plan  --target 0.95 [--g 5] [--k 3] [--l 1]
//! onion-dtn serve [--port 7070] [--host 127.0.0.1] [--workers 0]
//!                 [--queue 128] [--cache 512] [--shards 8]
//! onion-dtn loadgen [--addr 127.0.0.1:7070] [--workers 2] [--duration 10]
//!                   [--sweep-share 0.1] [--seed 1] [--report out.json] [--shutdown]
//! ```
//!
//! Fault-injection flags (any experiment command): `--fault-churn <rate>`
//! (node crashes per minute, with `--fault-downtime <mean minutes>` and
//! `--fault-forget` to also wipe duplicate-suppression state),
//! `--fault-contact-loss <p>`, `--fault-truncation <p>`, and
//! `--fault-msg-loss <p>`. `--wire` turns on wire mode: every forward
//! moves (and, at route hops, peels) a real constant-size onion packet,
//! filling the `wire.*` counters without changing any abstract result.
//! `--keep-going` tolerates quarantined trial
//! failures instead of aborting; `--resume <path>` checkpoints finished
//! points to a JSONL file and skips them on restart, byte-identically.
//!
//! Exit codes: `0` success, `2` usage error, `3` I/O error, `4` a trial
//! failed its retry and the run aborted (rerun with `--keep-going`).
//!
//! Telemetry flags (any command): `--metrics-out <path>` appends one
//! JSON object per experiment point to `<path>`, `--trace-out <path>`
//! appends one JSON object per message-lifecycle event (bounded per
//! trial by `--trace-cap <n>`, default 4096; tracing never perturbs
//! results), `--progress` shows a live trials/s + ETA line on stderr,
//! and `--quiet` silences all status output below the error level.
//! `ONION_DTN_LOG`, `ONION_DTN_METRICS`, `ONION_DTN_TRACE`, and
//! `ONION_DTN_PROGRESS` set the same defaults from the environment
//! (see the `obs` crate). When `--resume` is active, a trial that
//! panics on both its seed and retry seed dumps its last traced
//! events into `crash-trial<N>.jsonl` next to the checkpoint file.

use std::collections::HashMap;
use std::process::ExitCode;

use onion_dtn::prelude::*;

fn print_usage() {
    eprintln!(
        "usage: onion-dtn <point|deadline-sweep|security-sweep|fault-sweep|trace|plan|serve|loadgen> [flags]\n\
         \n\
         common flags: --n <nodes> --g <group size> --k <onions> --l <copies>\n\
         \t--t <deadline> --c <compromised> --messages <m> --realizations <r> --seed <s>\n\
         \t--threads <w>  (worker threads for the realization fan-out; 0 = auto;\n\
         \t                results are identical for every value)\n\
         faults: --fault-churn <crashes/min> --fault-downtime <mean min> --fault-forget\n\
         \t--fault-contact-loss <p> --fault-truncation <p> --fault-msg-loss <p>\n\
         wire mode: --wire (move + peel real constant-size ciphertext per forward;\n\
         \t         abstract results are bit-identical, wire.* counters fill in)\n\
         resilience: --keep-going (tolerate quarantined trials)\n\
         \t--resume <path> (JSONL checkpoint; finished points are skipped on restart)\n\
         trace: onion-dtn trace (cambridge|infocom|<haggle file>) [--t seconds]\n\
         plan:  onion-dtn plan --target 0.95 [--g --k --l]  (deadline for target delivery)\n\
         serve: onion-dtn serve [--port 7070 --host 127.0.0.1 --workers 0 --queue 128\n\
         \t--cache 512 --shards 8 --sweep-threads 1] (HTTP daemon; /healthz /metricsz\n\
         \t/v1/model/* /v1/sweep/* — POST /v1/admin/shutdown drains and exits)\n\
         \t--store <dir> (crash-safe disk response store; survives kill -9)\n\
         \t--store-budget <bytes> (store size budget, default 256 MiB)\n\
         \t--request-deadline-secs 300 (503 if expired in queue, 504 mid-sweep)\n\
         \t--read-timeout-secs 10 (overall read budget; defeats slowloris)\n\
         loadgen: onion-dtn loadgen [--addr 127.0.0.1:7070 --workers 2 --duration 10\n\
         \t--sweep-share 0.1 --seed 1 --report out.json --shutdown]\n\
         \t--max-retries 3 --backoff-ms 50 (retry 503/transport errors with\n\
         \t                                 jittered exponential backoff)\n\
         \t--chaos --chaos-share 0.25 (inject drops/stalls/half-closes/garbage)\n\
         telemetry: --metrics-out <path> (JSONL per experiment point)\n\
         \t--trace-out <path> (JSONL message-lifecycle trace; deterministic,\n\
         \t                    never perturbs results)  --trace-cap <n> (per-trial\n\
         \t                    ring-buffer capacity, default 4096)\n\
         \t--progress (live trials/s + ETA on stderr)  --quiet (errors only)\n\
         exit codes: 0 ok | 2 usage | 3 I/O | 4 trial failed its retry"
    );
}

/// Flags that take no value; present means `"true"`.
const BOOL_FLAGS: &[&str] = &[
    "progress",
    "quiet",
    "keep-going",
    "fault-forget",
    "shutdown",
    "wire",
    "chaos",
];

/// A CLI failure carrying its process exit code: usage errors exit 2,
/// I/O errors 3, and quarantined trial failures 4.
#[derive(Debug)]
enum CliError {
    /// Bad command line or invalid parameter combination (exit 2).
    Usage(String),
    /// Filesystem or checkpoint trouble (exit 3).
    Io(String),
    /// A realization panicked on its seed *and* its retry seed, and
    /// `--keep-going` was not set (exit 4).
    Trial(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Trial(_) => 4,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Trial(m) => m,
        }
    }
}

// Parse and validation helpers report plain strings; those are usage
// errors by default. I/O and trial failures are constructed explicitly.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

/// Parses `--key value` pairs; returns positional args and the flag map.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

/// Applies the telemetry flags to the global `obs` recorder. Env vars
/// (`ONION_DTN_*`) set the defaults; explicit flags override them.
fn apply_telemetry(flags: &HashMap<String, String>) -> Result<(), String> {
    obs::init();
    if let Some(path) = flags.get("metrics-out") {
        obs::set_metrics_enabled(true);
        obs::set_metrics_path(Some(std::path::Path::new(path)));
    }
    if let Some(path) = flags.get("trace-out") {
        obs::set_trace_path(Some(std::path::Path::new(path)));
        obs::set_trace_enabled(true);
    }
    if let Some(cap) = flags.get("trace-cap") {
        let cap: usize = cap
            .parse()
            .map_err(|_| format!("cannot parse --trace-cap value {cap:?}"))?;
        if cap == 0 {
            return Err("--trace-cap must be at least 1".to_string());
        }
        obs::set_trace_capacity(cap);
    }
    if flags.contains_key("progress") {
        obs::set_progress(true);
    }
    if flags.contains_key("quiet") {
        obs::set_filter("error");
        obs::set_progress(false);
    }
    Ok(())
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("cannot parse --{key} value {v:?}")),
        None => Ok(default),
    }
}

fn config_from(flags: &HashMap<String, String>) -> Result<ProtocolConfig, String> {
    let cfg = ProtocolConfig {
        nodes: flag(flags, "n", 100usize)?,
        group_size: flag(flags, "g", 5usize)?,
        onions: flag(flags, "k", 3usize)?,
        copies: flag(flags, "l", 1u32)?,
        deadline: TimeDelta::new(flag(flags, "t", 1080.0f64)?),
        compromised: flag(flags, "c", 10usize)?,
        selection: RouteSelection::Uniform,
    };
    cfg.validate()?;
    Ok(cfg)
}

/// Builds the fault plan from `--fault-*` flags; all default to off.
fn faults_from(flags: &HashMap<String, String>) -> Result<FaultPlan, String> {
    let crash_rate = flag(flags, "fault-churn", 0.0f64)?;
    let churn = (crash_rate > 0.0).then_some(ChurnConfig {
        crash_rate,
        mean_downtime: flag(flags, "fault-downtime", 60.0f64)?,
        memory: if flags.contains_key("fault-forget") {
            ChurnMemory::Forget
        } else {
            ChurnMemory::Persist
        },
    });
    let plan = FaultPlan {
        churn,
        contact_failure: flag(flags, "fault-contact-loss", 0.0f64)?,
        transfer_truncation: flag(flags, "fault-truncation", 0.0f64)?,
        message_loss: flag(flags, "fault-msg-loss", 0.0f64)?,
    };
    plan.validate()?;
    Ok(plan)
}

fn opts_from(flags: &HashMap<String, String>) -> Result<ExperimentOptions, String> {
    Ok(ExperimentOptions {
        messages: flag(flags, "messages", 25usize)?,
        realizations: flag(flags, "realizations", 5usize)?,
        seed: flag(flags, "seed", 0x0D10_57E5u64)?,
        intercontact_range: (1.0, 36.0),
        threads: flag(flags, "threads", 0usize)?,
        faults: faults_from(flags)?,
        keep_going: flags.contains_key("keep-going"),
        wire: flags.contains_key("wire"),
    })
}

/// Opens the `--resume` checkpoint (if requested) against a fingerprint
/// of everything that determines the command's results. `threads` is
/// excluded: results are thread-count-independent, so resuming with a
/// different `--threads` is legal.
fn open_checkpoint(
    flags: &HashMap<String, String>,
    command: &str,
    cfg: &ProtocolConfig,
    opts: &ExperimentOptions,
) -> Result<Option<Checkpoint>, CliError> {
    let Some(path) = flags.get("resume") else {
        return Ok(None);
    };
    let fingerprint = Checkpoint::fingerprint(&(command, cfg, &opts.canonical()));
    let cp = Checkpoint::open(std::path::Path::new(path), &fingerprint)
        .map_err(|e| CliError::Io(format!("checkpoint {path}: {e}")))?;
    arm_crash_sink(path, &fingerprint, opts.seed);
    if cp.resumed_points() > 0 {
        obs::info!(
            "onion_dtn",
            "resuming from {path}: {} finished point(s) on record",
            cp.resumed_points()
        );
    }
    Ok(Some(cp))
}

/// Points the flight recorder's crash sink at the checkpoint's
/// directory: a quarantined trial then dumps its last traced events,
/// the run fingerprint, and the base seed into a JSONL crash bundle
/// next to the checkpoint file.
fn arm_crash_sink(checkpoint_path: &str, fingerprint: &str, seed: u64) {
    let dir = match std::path::Path::new(checkpoint_path).parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    obs::set_crash_sink(&dir, fingerprint, seed);
}

/// Runs `compute` through the checkpoint when one is open, so a finished
/// point is replayed instead of recomputed.
fn checkpointed<T, F>(cp: &mut Option<Checkpoint>, key: &str, compute: F) -> Result<T, CliError>
where
    T: serde::Serialize + serde::DeserializeOwned,
    F: FnOnce() -> T,
{
    match cp {
        Some(cp) => cp
            .run_point(key, compute)
            .map_err(|e| CliError::Io(format!("checkpoint: {e}"))),
        None => Ok(compute()),
    }
}

fn cmd_point(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    obs::info!(
        "onion_dtn",
        "n={} g={} K={} L={} T={} c={} ({} msgs x {} realizations)",
        cfg.nodes,
        cfg.group_size,
        cfg.onions,
        cfg.copies,
        cfg.deadline.as_f64(),
        cfg.compromised,
        opts.messages,
        opts.realizations
    );
    let mut cp = open_checkpoint(flags, "point", &cfg, &opts)?;
    let p: PointSummary = checkpointed(&mut cp, "point", || run_random_graph_point(&cfg, &opts))?;
    if p.trial_failures > 0 {
        eprintln!("warning: {} realization(s) quarantined", p.trial_failures);
    }
    println!(
        "delivery   analysis {:.4} | simulation {:.4}",
        p.analysis_delivery, p.sim_delivery
    );
    println!(
        "traceable  analysis {:.4} | simulation {}",
        p.analysis_traceable,
        p.sim_traceable
            .map_or("   -  ".into(), |v| format!("{v:.4}"))
    );
    println!(
        "anonymity  analysis {:.4} | simulation {}",
        p.analysis_anonymity,
        p.sim_anonymity
            .map_or("   -  ".into(), |v| format!("{v:.4}"))
    );
    println!(
        "cost       bound    {:.1} | simulation {:.2} tx/msg",
        p.analysis_cost_bound, p.sim_transmissions
    );
    Ok(())
}

fn cmd_deadline_sweep(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    let max_t = cfg.deadline.as_f64();
    let deadlines: Vec<f64> = (0..8)
        .map(|i| max_t * (0.06f64).max(2f64.powi(i - 7)))
        .map(|t| (t * 10.0).round() / 10.0)
        .collect();
    let mut cp = open_checkpoint(flags, "deadline-sweep", &cfg, &opts)?;
    let rows: Vec<DeliverySweepRow> = checkpointed(&mut cp, "rows", || {
        SweepSpec::random_graph(cfg.clone())
            .over_deadlines(&deadlines)
            .run(&opts)
            .into_delivery()
            .expect("deadline axis yields delivery rows")
    })?;
    println!("{:<12}{:>12}{:>12}", "deadline", "analysis", "simulation");
    for row in rows {
        println!(
            "{:<12}{:>12.4}{:>12.4}",
            row.deadline, row.analysis, row.sim
        );
    }
    Ok(())
}

fn cmd_security_sweep(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    let cs: Vec<usize> = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|f| ((cfg.nodes as f64 * f).round() as usize).max(1))
        .collect();
    let mut cp = open_checkpoint(flags, "security-sweep", &cfg, &opts)?;
    let rows: Vec<SecuritySweepRow> = checkpointed(&mut cp, "rows", || {
        SweepSpec::random_graph(cfg.clone())
            .over_security(&cs, 3)
            .run(&opts)
            .into_security()
            .expect("security axis yields security rows")
    })?;
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}",
        "c", "trace(A)", "trace(S)", "anon(A)", "anon(S)"
    );
    for row in rows {
        println!(
            "{:<8}{:>12.4}{:>12}{:>12.4}{:>12}",
            row.compromised,
            row.analysis_traceable,
            row.sim_traceable
                .map_or("   -  ".into(), |v| format!("{v:.4}")),
            row.analysis_anonymity,
            row.sim_anonymity
                .map_or("   -  ".into(), |v| format!("{v:.4}")),
        );
    }
    Ok(())
}

fn cmd_trace(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    use rand::SeedableRng;
    let which = positional.first().ok_or_else(|| {
        CliError::Usage("trace needs an argument: cambridge | infocom | <file>".to_string())
    })?;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(flag(flags, "seed", 1u64)?);
    let schedule = match which.as_str() {
        "cambridge" => SyntheticTraceBuilder::cambridge_like().build(&mut rng),
        "infocom" => SyntheticTraceBuilder::infocom05_like().build(&mut rng),
        path => {
            let file =
                std::fs::File::open(path).map_err(|e| CliError::Io(format!("open {path}: {e}")))?;
            HaggleParser::new()
                .lenient(flag(flags, "max-bad-lines", 0.0f64)?)
                .parse_reader(std::io::BufReader::new(file))
                .map_err(|e| CliError::Io(format!("parse {path}: {e}")))?
                .schedule
        }
    };
    let n = schedule.node_count();
    obs::info!(
        "onion_dtn",
        "trace: {n} nodes, {} contacts over {:.2} days",
        schedule.len(),
        schedule.horizon().as_f64() / 86_400.0
    );
    let cfg = ProtocolConfig {
        nodes: n,
        group_size: flag(flags, "g", 1usize)?,
        onions: flag(flags, "k", 3usize)?,
        copies: flag(flags, "l", 1u32)?,
        deadline: TimeDelta::new(flag(flags, "t", 3600.0f64)?),
        compromised: (n / 10).max(1),
        selection: RouteSelection::Uniform,
    };
    cfg.validate()?;
    let opts = ExperimentOptions {
        messages: flag(flags, "messages", 25usize)?,
        realizations: flag(flags, "realizations", 4usize)?,
        seed: flag(flags, "seed", 1u64)?,
        threads: flag(flags, "threads", 0usize)?,
        faults: faults_from(flags)?,
        keep_going: flags.contains_key("keep-going"),
        wire: flags.contains_key("wire"),
        ..Default::default()
    };
    let mut cp = open_checkpoint(flags, &format!("trace:{which}"), &cfg, &opts)?;
    let p: PointSummary = checkpointed(&mut cp, "point", || {
        run_schedule_point(&schedule, &cfg, &opts)
    })?;
    println!(
        "delivery   analysis {:.4} | simulation {:.4}",
        p.analysis_delivery, p.sim_delivery
    );
    println!(
        "anonymity  analysis {:.4} | simulation {}",
        p.analysis_anonymity,
        p.sim_anonymity
            .map_or("   -  ".into(), |v| format!("{v:.4}"))
    );
    Ok(())
}

/// Default base plan for `fault-sweep` when no `--fault-*` flags are
/// given: a representative mix of every fault class.
fn default_sweep_plan() -> FaultPlan {
    FaultPlan {
        churn: Some(ChurnConfig {
            crash_rate: 0.002,
            mean_downtime: 120.0,
            memory: ChurnMemory::Persist,
        }),
        contact_failure: 0.2,
        transfer_truncation: 0.1,
        message_loss: 0.05,
    }
}

fn cmd_fault_sweep(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    let base = {
        let explicit = faults_from(flags)?;
        if explicit.is_noop() {
            default_sweep_plan()
        } else {
            explicit
        }
    };
    let intensities = [0.0, 0.25, 0.5, 0.75, 1.0];
    // The base plan is swept (opts.faults is overridden per point), so
    // it joins the fingerprint explicitly.
    let mut cp = match flags.get("resume") {
        Some(path) => {
            let fp = Checkpoint::fingerprint(&(
                "fault-sweep",
                &cfg,
                &opts.canonical(),
                &base,
                &intensities[..],
            ));
            let cp = Checkpoint::open(std::path::Path::new(path), &fp)
                .map_err(|e| CliError::Io(format!("checkpoint {path}: {e}")))?;
            arm_crash_sink(path, &fp, opts.seed);
            if cp.resumed_points() > 0 {
                obs::info!(
                    "onion_dtn",
                    "resuming from {path}: {} finished point(s) on record",
                    cp.resumed_points()
                );
            }
            Some(cp)
        }
        None => None,
    };
    let rows = SweepSpec::random_graph(cfg.clone())
        .over_faults(base, &intensities)
        .run_with_checkpoint(&opts, cp.as_mut())
        .map_err(|e| CliError::Io(format!("checkpoint: {e}")))?
        .into_fault()
        .expect("fault axis yields fault rows");
    println!(
        "{:<11}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}",
        "intensity", "deliv(A)", "deliv(S)", "trace(S)", "anon(S)", "crashes", "dropped"
    );
    for row in rows {
        let s = &row.summary;
        println!(
            "{:<11}{:>12.4}{:>12.4}{:>12}{:>12}{:>10}{:>10}",
            row.intensity,
            s.analysis_delivery,
            s.sim_delivery,
            s.sim_traceable
                .map_or("   -  ".into(), |v| format!("{v:.4}")),
            s.sim_anonymity
                .map_or("   -  ".into(), |v| format!("{v:.4}")),
            s.sim_counters.fault_crashes,
            s.sim_counters.fault_contacts_dropped,
        );
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let target: f64 = flag(flags, "target", 0.95f64)?;
    let g: usize = flag(flags, "g", 5usize)?;
    let k: usize = flag(flags, "k", 3usize)?;
    let l: u32 = flag(flags, "l", 1u32)?;
    // Mean pairwise rate of the Table II graph: E[1/X], X ~ U(1, 36).
    let lambda = (36f64.ln() - 1f64.ln()) / 35.0;
    let rates = analysis::uniform_onion_path_rates(lambda, g, k)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let t = analysis::deadline_for_target(&rates, l, target)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    println!(
        "deadline for {:.0}% delivery with g={g}, K={k}, L={l}: {t:.1} minutes",
        target * 100.0
    );
    println!(
        "(median delay {:.1} min, mean {:.1} min)",
        analysis::median_delay(&rates).map_err(|e| e.to_string())?,
        analysis::HypoExp::new(rates)
            .map_err(|e| e.to_string())?
            .mean()
    );
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let host: String = flag(flags, "host", "127.0.0.1".to_string())?;
    let port: u16 = flag(flags, "port", 7070u16)?;
    let cfg = ServeConfig {
        addr: format!("{host}:{port}"),
        workers: flag(flags, "workers", 0usize)?,
        queue_depth: flag(flags, "queue", 128usize)?,
        cache_capacity: flag(flags, "cache", 512usize)?,
        cache_shards: flag(flags, "shards", 8usize)?,
        sweep_threads: flag(flags, "sweep-threads", 1usize)?,
        max_realizations: flag(flags, "max-realizations", 64usize)?,
        max_messages: flag(flags, "max-messages", 200usize)?,
        store_dir: flags.get("store").cloned(),
        store_budget_bytes: flag(
            flags,
            "store-budget",
            serve::server::DEFAULT_STORE_BUDGET_BYTES,
        )?,
        request_deadline_secs: flag(
            flags,
            "request-deadline-secs",
            serve::server::DEFAULT_REQUEST_DEADLINE_SECS,
        )?,
        read_timeout_secs: flag(
            flags,
            "read-timeout-secs",
            serve::server::DEFAULT_READ_TIMEOUT_SECS,
        )?,
    };
    let server = Server::bind(&cfg).map_err(|e| CliError::Io(serve_error_text(e)))?;
    let addr = server.local_addr();
    println!("serving on http://{addr} (POST /v1/admin/shutdown to drain and exit)");
    server.run().map_err(|e| CliError::Io(serve_error_text(e)))
}

fn serve_error_text(e: ServeError) -> String {
    match e {
        ServeError::Bind(msg) => msg,
        ServeError::Io(err) => err.to_string(),
        ServeError::Store(msg) => msg,
    }
}

fn cmd_loadgen(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let cfg = LoadgenConfig {
        addr: flag(flags, "addr", "127.0.0.1:7070".to_string())?,
        metrics_out: flags.get("metrics-out").cloned(),
        workers: flag(flags, "workers", 2usize)?,
        duration_secs: flag(flags, "duration", 10.0f64)?,
        sweep_share: flag(flags, "sweep-share", 0.1f64)?,
        seed: flag(flags, "seed", 1u64)?,
        shutdown_after: flags.contains_key("shutdown"),
        max_retries: flag(flags, "max-retries", 3u32)?,
        backoff_base_ms: flag(flags, "backoff-ms", 50u64)?,
        chaos: flags.contains_key("chaos"),
        chaos_share: flag(flags, "chaos-share", 0.25f64)?,
    };
    let report = run_loadgen(&cfg).map_err(CliError::Usage)?;
    println!(
        "loadgen: {} requests in {:.1}s ({:.1} req/s) — ok {}, rejected {}, failed {}, \
         retries {}, gave up {}, chaos {}",
        report.total,
        report.elapsed_secs,
        report.throughput_rps,
        report.ok,
        report.rejected,
        report.failed,
        report.retries,
        report.gave_up,
        report.chaos_injected,
    );
    for (class, s) in &report.classes {
        println!(
            "  {class:<8} n={:<6} p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            s.count, s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms
        );
    }
    if let Some(path) = flags.get("report") {
        let json = serde_json::to_string(&report)
            .map_err(|e| CliError::Io(format!("cannot serialize report: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        println!("report written to {path}");
    }
    if report.failed > 0 {
        return Err(CliError::Io(format!(
            "{} requests failed (non-2xx/503 or transport error)",
            report.failed
        )));
    }
    Ok(())
}

fn dispatch(
    command: &str,
    positional: &[String],
    flags: &HashMap<String, String>,
) -> Result<(), CliError> {
    match command {
        "point" => cmd_point(flags),
        "deadline-sweep" => cmd_deadline_sweep(flags),
        "security-sweep" => cmd_security_sweep(flags),
        "fault-sweep" => cmd_fault_sweep(flags),
        "trace" => cmd_trace(positional, flags),
        "plan" => cmd_plan(flags),
        "serve" => cmd_serve(flags),
        "loadgen" => cmd_loadgen(flags),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        print_usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match parse_flags(rest) {
        Err(e) => Err(CliError::Usage(e)),
        Ok((positional, flags)) => match apply_telemetry(&flags) {
            Err(e) => Err(CliError::Usage(e)),
            Ok(()) => {
                // Quarantined trial failures abort experiments by panicking
                // with a marker prefix; translate that to exit code 4 instead
                // of a raw abort. Any other panic is re-raised untouched.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    dispatch(&command, &positional, &flags)
                })) {
                    Ok(r) => r,
                    Err(payload) => {
                        let text = panic_text(payload.as_ref());
                        if text.contains(TRIAL_FAILURE_ABORT) {
                            Err(CliError::Trial(text))
                        } else {
                            std::panic::resume_unwind(payload)
                        }
                    }
                }
            }
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error!("onion_dtn", "error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                print_usage();
            }
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let (pos, flags) = parse_flags(&strings(&["cambridge", "--g", "5", "--t", "60"])).unwrap();
        assert_eq!(pos, vec!["cambridge"]);
        assert_eq!(flags.get("g").map(String::as_str), Some("5"));
        assert_eq!(flag(&flags, "t", 0.0f64).unwrap(), 60.0);
        assert_eq!(flag(&flags, "missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse_flags(&strings(&["--g"])).is_err());
    }

    #[test]
    fn bad_value_is_error() {
        let (_, flags) = parse_flags(&strings(&["--g", "five"])).unwrap();
        assert!(flag(&flags, "g", 1usize).is_err());
    }

    #[test]
    fn threads_flag_reaches_experiment_options() {
        let (_, flags) = parse_flags(&strings(&["--threads", "4"])).unwrap();
        let opts = opts_from(&flags).unwrap();
        assert_eq!(opts.threads, 4);
        // Default is auto-detect.
        let (_, flags) = parse_flags(&strings(&[])).unwrap();
        assert_eq!(opts_from(&flags).unwrap().threads, 0);
    }

    #[test]
    fn bool_flags_take_no_value() {
        // `--progress` and `--quiet` must not consume the token after
        // them, so they can precede positionals and other flags.
        let (pos, flags) = parse_flags(&strings(&[
            "--progress",
            "cambridge",
            "--quiet",
            "--g",
            "5",
        ]))
        .unwrap();
        assert_eq!(pos, vec!["cambridge"]);
        assert_eq!(flags.get("progress").map(String::as_str), Some("true"));
        assert_eq!(flags.get("quiet").map(String::as_str), Some("true"));
        assert_eq!(flags.get("g").map(String::as_str), Some("5"));
    }

    #[test]
    fn metrics_out_flag_takes_a_path() {
        let (_, flags) =
            parse_flags(&strings(&["--metrics-out", "target/m.jsonl", "--quiet"])).unwrap();
        assert_eq!(
            flags.get("metrics-out").map(String::as_str),
            Some("target/m.jsonl")
        );
        assert!(parse_flags(&strings(&["--metrics-out"])).is_err());
    }

    #[test]
    fn config_respects_flags_and_validates() {
        let (_, flags) = parse_flags(&strings(&["--g", "2", "--k", "4"])).unwrap();
        let cfg = config_from(&flags).unwrap();
        assert_eq!((cfg.group_size, cfg.onions), (2, 4));
        // Invalid: K exceeds the group count.
        let (_, flags) = parse_flags(&strings(&["--n", "10", "--g", "5", "--k", "3"])).unwrap();
        assert!(config_from(&flags).is_err());
    }
}
