//! Command-line interface for the onion-dtn experiment library.
//!
//! ```text
//! onion-dtn point   [--n 100] [--g 5] [--k 3] [--l 1] [--t 1080] [--c 10]
//!                   [--messages 25] [--realizations 5] [--seed 1] [--threads 0]
//! onion-dtn deadline-sweep [same flags; sweeps T over a log grid]
//! onion-dtn security-sweep [same flags; sweeps c from 1% to 50%]
//! onion-dtn trace (cambridge|infocom|PATH) [--t 3600]
//! onion-dtn plan  --target 0.95 [--g 5] [--k 3] [--l 1]
//! ```
//!
//! Telemetry flags (any command): `--metrics-out <path>` appends one
//! JSON object per experiment point to `<path>`, `--progress` shows a
//! live trials/s + ETA line on stderr, and `--quiet` silences all
//! status output below the error level. `ONION_DTN_LOG`,
//! `ONION_DTN_METRICS`, and `ONION_DTN_PROGRESS` set the same defaults
//! from the environment (see the `obs` crate).

use std::collections::HashMap;
use std::process::ExitCode;

use onion_dtn::prelude::*;

fn print_usage() {
    eprintln!(
        "usage: onion-dtn <point|deadline-sweep|security-sweep|trace|plan> [flags]\n\
         \n\
         common flags: --n <nodes> --g <group size> --k <onions> --l <copies>\n\
         \t--t <deadline> --c <compromised> --messages <m> --realizations <r> --seed <s>\n\
         \t--threads <w>  (worker threads for the realization fan-out; 0 = auto;\n\
         \t                results are identical for every value)\n\
         trace: onion-dtn trace (cambridge|infocom|<haggle file>) [--t seconds]\n\
         plan:  onion-dtn plan --target 0.95 [--g --k --l]  (deadline for target delivery)\n\
         telemetry: --metrics-out <path> (JSONL per experiment point)\n\
         \t--progress (live trials/s + ETA on stderr)  --quiet (errors only)"
    );
}

/// Flags that take no value; present means `"true"`.
const BOOL_FLAGS: &[&str] = &["progress", "quiet"];

/// Parses `--key value` pairs; returns positional args and the flag map.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

/// Applies the telemetry flags to the global `obs` recorder. Env vars
/// (`ONION_DTN_*`) set the defaults; explicit flags override them.
fn apply_telemetry(flags: &HashMap<String, String>) {
    obs::init();
    if let Some(path) = flags.get("metrics-out") {
        obs::set_metrics_enabled(true);
        obs::set_metrics_path(Some(std::path::Path::new(path)));
    }
    if flags.contains_key("progress") {
        obs::set_progress(true);
    }
    if flags.contains_key("quiet") {
        obs::set_filter("error");
        obs::set_progress(false);
    }
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("cannot parse --{key} value {v:?}")),
        None => Ok(default),
    }
}

fn config_from(flags: &HashMap<String, String>) -> Result<ProtocolConfig, String> {
    let cfg = ProtocolConfig {
        nodes: flag(flags, "n", 100usize)?,
        group_size: flag(flags, "g", 5usize)?,
        onions: flag(flags, "k", 3usize)?,
        copies: flag(flags, "l", 1u32)?,
        deadline: TimeDelta::new(flag(flags, "t", 1080.0f64)?),
        compromised: flag(flags, "c", 10usize)?,
        selection: RouteSelection::Uniform,
    };
    cfg.validate()?;
    Ok(cfg)
}

fn opts_from(flags: &HashMap<String, String>) -> Result<ExperimentOptions, String> {
    Ok(ExperimentOptions {
        messages: flag(flags, "messages", 25usize)?,
        realizations: flag(flags, "realizations", 5usize)?,
        seed: flag(flags, "seed", 0x0D10_57E5u64)?,
        intercontact_range: (1.0, 36.0),
        threads: flag(flags, "threads", 0usize)?,
    })
}

fn cmd_point(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    obs::info!(
        "onion_dtn",
        "n={} g={} K={} L={} T={} c={} ({} msgs x {} realizations)",
        cfg.nodes,
        cfg.group_size,
        cfg.onions,
        cfg.copies,
        cfg.deadline.as_f64(),
        cfg.compromised,
        opts.messages,
        opts.realizations
    );
    let p = run_random_graph_point(&cfg, &opts);
    println!(
        "delivery   analysis {:.4} | simulation {:.4}",
        p.analysis_delivery, p.sim_delivery
    );
    println!(
        "traceable  analysis {:.4} | simulation {}",
        p.analysis_traceable,
        p.sim_traceable
            .map_or("   -  ".into(), |v| format!("{v:.4}"))
    );
    println!(
        "anonymity  analysis {:.4} | simulation {}",
        p.analysis_anonymity,
        p.sim_anonymity
            .map_or("   -  ".into(), |v| format!("{v:.4}"))
    );
    println!(
        "cost       bound    {:.1} | simulation {:.2} tx/msg",
        p.analysis_cost_bound, p.sim_transmissions
    );
    Ok(())
}

fn cmd_deadline_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    let max_t = cfg.deadline.as_f64();
    let deadlines: Vec<f64> = (0..8)
        .map(|i| max_t * (0.06f64).max(2f64.powi(i - 7)))
        .map(|t| (t * 10.0).round() / 10.0)
        .collect();
    println!("{:<12}{:>12}{:>12}", "deadline", "analysis", "simulation");
    for row in onion_routing::delivery_sweep_random_graph(&cfg, &deadlines, &opts) {
        println!(
            "{:<12}{:>12.4}{:>12.4}",
            row.deadline, row.analysis, row.sim
        );
    }
    Ok(())
}

fn cmd_security_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = config_from(flags)?;
    let opts = opts_from(flags)?;
    let cs: Vec<usize> = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|f| ((cfg.nodes as f64 * f).round() as usize).max(1))
        .collect();
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}",
        "c", "trace(A)", "trace(S)", "anon(A)", "anon(S)"
    );
    for row in onion_routing::security_sweep_random_graph(&cfg, &cs, 3, &opts) {
        println!(
            "{:<8}{:>12.4}{:>12}{:>12.4}{:>12}",
            row.compromised,
            row.analysis_traceable,
            row.sim_traceable
                .map_or("   -  ".into(), |v| format!("{v:.4}")),
            row.analysis_anonymity,
            row.sim_anonymity
                .map_or("   -  ".into(), |v| format!("{v:.4}")),
        );
    }
    Ok(())
}

fn cmd_trace(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    use rand::SeedableRng;
    let which = positional
        .first()
        .ok_or_else(|| "trace needs an argument: cambridge | infocom | <file>".to_string())?;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(flag(flags, "seed", 1u64)?);
    let schedule = match which.as_str() {
        "cambridge" => SyntheticTraceBuilder::cambridge_like().build(&mut rng),
        "infocom" => SyntheticTraceBuilder::infocom05_like().build(&mut rng),
        path => {
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            HaggleParser::new()
                .parse_reader(std::io::BufReader::new(file))
                .map_err(|e| format!("parse {path}: {e}"))?
                .schedule
        }
    };
    let n = schedule.node_count();
    obs::info!(
        "onion_dtn",
        "trace: {n} nodes, {} contacts over {:.2} days",
        schedule.len(),
        schedule.horizon().as_f64() / 86_400.0
    );
    let cfg = ProtocolConfig {
        nodes: n,
        group_size: flag(flags, "g", 1usize)?,
        onions: flag(flags, "k", 3usize)?,
        copies: flag(flags, "l", 1u32)?,
        deadline: TimeDelta::new(flag(flags, "t", 3600.0f64)?),
        compromised: (n / 10).max(1),
        selection: RouteSelection::Uniform,
    };
    cfg.validate()?;
    let opts = ExperimentOptions {
        messages: flag(flags, "messages", 25usize)?,
        realizations: flag(flags, "realizations", 4usize)?,
        seed: flag(flags, "seed", 1u64)?,
        threads: flag(flags, "threads", 0usize)?,
        ..Default::default()
    };
    let p = run_schedule_point(&schedule, &cfg, &opts);
    println!(
        "delivery   analysis {:.4} | simulation {:.4}",
        p.analysis_delivery, p.sim_delivery
    );
    println!(
        "anonymity  analysis {:.4} | simulation {}",
        p.analysis_anonymity,
        p.sim_anonymity
            .map_or("   -  ".into(), |v| format!("{v:.4}"))
    );
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let target: f64 = flag(flags, "target", 0.95f64)?;
    let g: usize = flag(flags, "g", 5usize)?;
    let k: usize = flag(flags, "k", 3usize)?;
    let l: u32 = flag(flags, "l", 1u32)?;
    // Mean pairwise rate of the Table II graph: E[1/X], X ~ U(1, 36).
    let lambda = (36f64.ln() - 1f64.ln()) / 35.0;
    let rates = analysis::uniform_onion_path_rates(lambda, g, k).map_err(|e| e.to_string())?;
    let t = analysis::deadline_for_target(&rates, l, target).map_err(|e| e.to_string())?;
    println!(
        "deadline for {:.0}% delivery with g={g}, K={k}, L={l}: {t:.1} minutes",
        target * 100.0
    );
    println!(
        "(median delay {:.1} min, mean {:.1} min)",
        analysis::median_delay(&rates).map_err(|e| e.to_string())?,
        analysis::HypoExp::new(rates)
            .map_err(|e| e.to_string())?
            .mean()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = parse_flags(rest).and_then(|(positional, flags)| {
        apply_telemetry(&flags);
        match command.as_str() {
            "point" => cmd_point(&flags),
            "deadline-sweep" => cmd_deadline_sweep(&flags),
            "security-sweep" => cmd_security_sweep(&flags),
            "trace" => cmd_trace(&positional, &flags),
            "plan" => cmd_plan(&flags),
            other => Err(format!("unknown command {other:?}")),
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error!("onion_dtn", "error: {e}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let (pos, flags) = parse_flags(&strings(&["cambridge", "--g", "5", "--t", "60"])).unwrap();
        assert_eq!(pos, vec!["cambridge"]);
        assert_eq!(flags.get("g").map(String::as_str), Some("5"));
        assert_eq!(flag(&flags, "t", 0.0f64).unwrap(), 60.0);
        assert_eq!(flag(&flags, "missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse_flags(&strings(&["--g"])).is_err());
    }

    #[test]
    fn bad_value_is_error() {
        let (_, flags) = parse_flags(&strings(&["--g", "five"])).unwrap();
        assert!(flag(&flags, "g", 1usize).is_err());
    }

    #[test]
    fn threads_flag_reaches_experiment_options() {
        let (_, flags) = parse_flags(&strings(&["--threads", "4"])).unwrap();
        let opts = opts_from(&flags).unwrap();
        assert_eq!(opts.threads, 4);
        // Default is auto-detect.
        let (_, flags) = parse_flags(&strings(&[])).unwrap();
        assert_eq!(opts_from(&flags).unwrap().threads, 0);
    }

    #[test]
    fn bool_flags_take_no_value() {
        // `--progress` and `--quiet` must not consume the token after
        // them, so they can precede positionals and other flags.
        let (pos, flags) = parse_flags(&strings(&[
            "--progress",
            "cambridge",
            "--quiet",
            "--g",
            "5",
        ]))
        .unwrap();
        assert_eq!(pos, vec!["cambridge"]);
        assert_eq!(flags.get("progress").map(String::as_str), Some("true"));
        assert_eq!(flags.get("quiet").map(String::as_str), Some("true"));
        assert_eq!(flags.get("g").map(String::as_str), Some("5"));
    }

    #[test]
    fn metrics_out_flag_takes_a_path() {
        let (_, flags) =
            parse_flags(&strings(&["--metrics-out", "target/m.jsonl", "--quiet"])).unwrap();
        assert_eq!(
            flags.get("metrics-out").map(String::as_str),
            Some("target/m.jsonl")
        );
        assert!(parse_flags(&strings(&["--metrics-out"])).is_err());
    }

    #[test]
    fn config_respects_flags_and_validates() {
        let (_, flags) = parse_flags(&strings(&["--g", "2", "--k", "4"])).unwrap();
        let cfg = config_from(&flags).unwrap();
        assert_eq!((cfg.group_size, cfg.onions), (2, 4));
        // Invalid: K exceeds the group count.
        let (_, flags) = parse_flags(&strings(&["--n", "10", "--g", "5", "--k", "3"])).unwrap();
        assert!(config_from(&flags).is_err());
    }
}
