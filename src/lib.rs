//! # onion-dtn
//!
//! A complete, from-scratch reproduction of *"An Analysis of Onion-Based
//! Anonymous Routing for Delay Tolerant Networks"* (Sakai, Sun, Ku, Wu,
//! Alanazi — ICDCS 2016): the abstract onion-group routing protocol
//! (single- and multi-copy), real layered encryption, a discrete-event DTN
//! simulator, trace substrates, and every analytical model of the paper's
//! Section IV, validated figure-by-figure in the `bench` crate.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`contact_graph`] — contact graphs, rates, schedules, generators;
//! * [`traces`] — Haggle trace parsing and Cambridge/Infocom-like
//!   synthetic traces with business-hours gating;
//! * [`onion_crypto`] — SHA-256 / HMAC / HKDF / ChaCha20 / Poly1305 /
//!   X25519 / onion packets, all RFC-vector tested;
//! * [`dtn_sim`] — the simulator and classical baselines;
//! * [`onion_routing`] — the paper's protocol, adversary model, realized
//!   metrics, and the experiment harness;
//! * [`analysis`] — delivery (hypoexponential opportunistic onion path),
//!   cost, traceable-rate, and path-anonymity models;
//! * [`serve`] — the dependency-free HTTP serving daemon (cached,
//!   single-flight Monte-Carlo sweeps + analytical models) and its
//!   closed-loop load generator.
//!
//! # Quick start
//!
//! ```
//! use onion_dtn::prelude::*;
//!
//! // Table II defaults, 6-hour deadline.
//! let cfg = ProtocolConfig {
//!     deadline: TimeDelta::new(360.0),
//!     ..ProtocolConfig::table2_defaults()
//! };
//! let opts = ExperimentOptions { messages: 5, realizations: 2, ..Default::default() };
//! let point = run_random_graph_point(&cfg, &opts);
//! println!(
//!     "delivery: model {:.3} vs simulation {:.3}",
//!     point.analysis_delivery, point.sim_delivery
//! );
//! # assert!(point.sim_delivery > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use contact_graph;
pub use dtn_sim;
pub use onion_crypto;
pub use onion_routing;
pub use serve;
pub use traces;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use analysis::{
        deadline_for_target, delay_quantile, delivery_rate, delivery_rate_multicopy,
        expected_traceable_rate, hypoexp_cdf, hypoexp_pdf, median_delay, path_anonymity,
        uniform_onion_path_rates, HypoExp,
    };
    pub use contact_graph::{waypoint_schedule, WaypointConfig};
    pub use contact_graph::{
        ContactEvent, ContactGraph, ContactSchedule, NodeId, Rate, Time, TimeDelta,
        UniformGraphBuilder,
    };
    pub use dtn_sim::{
        run, run_with_faults, ChurnConfig, ChurnMemory, DropPolicy, FaultPlan, FaultState, Message,
        MessageId, ReportAggregate, RoutingProtocol, SimConfig, SimReport, StartPolicy,
        StreamingStats, WorkloadBuilder,
    };
    pub use onion_crypto::{
        EpochKeychain, FixedSizeOnion, GroupKeyring, OnionBuilder, OnionPacket, Peeled,
    };
    pub use onion_routing::{
        run_random_graph_point, run_schedule_point, run_trials, run_trials_resilient, trial_rng,
        trial_rng_attempt, trial_seed, trial_seed_attempt, Adversary, Checkpoint, CheckpointError,
        DeliverySweepRow, ExperimentOptions, FaultAxis, FaultSweepRow, ForwardingMode,
        OnionCryptoContext, OnionGroups, OnionRouting, PointSummary, ProtocolConfig,
        RouteSelection, RunnerConfig, Scenario, SecurityAxis, SecuritySweepRow, SeedDomain,
        SweepAxis, SweepReport, SweepSpec, TraceScenario, TrialFailure, TRIAL_FAILURE_ABORT,
    };
    pub use serve::{
        run_loadgen, LoadReport, LoadgenConfig, ServeConfig, ServeError, Server, ServerHandle,
    };
    pub use traces::{ActivityPattern, HaggleParser, SyntheticTraceBuilder};
}
