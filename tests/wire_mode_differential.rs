//! Differential determinism suite for wire mode.
//!
//! Wire mode moves and peels real constant-size ciphertext on every
//! forward, but all of its randomness comes from the dedicated
//! `SeedDomain::Wire` stream — so the *abstract* results (delivery, cost,
//! anonymity, every legacy counter) must be bit-identical with the flag
//! on or off, at any thread count. This suite pins that claim:
//!
//! 1. `PointSummary` with wire mode on, after zeroing the five `wire_*`
//!    counters, serializes to the exact bytes of the wire-off summary —
//!    at threads 1, 2, and 8.
//! 2. The wire byte/AEAD counters themselves are deterministic: equal
//!    across thread counts and pinned to a committed golden
//!    (`tests/golden/wire_counters_fig04_small.json`). Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test --test wire_mode_differential`.

use contact_graph::TimeDelta;
use onion_routing::{run_random_graph_point, ExperimentOptions, PointSummary, ProtocolConfig};

const GOLDEN_WIRE_COUNTERS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/wire_counters_fig04_small.json"
);

/// Same small fig04-flavored configuration as the committed
/// `point_fig04_small.json` golden, so the two suites pin the same run.
fn golden_cfg() -> ProtocolConfig {
    ProtocolConfig {
        nodes: 40,
        group_size: 5,
        onions: 2,
        compromised: 4,
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    }
}

fn golden_opts(threads: usize, wire: bool) -> ExperimentOptions {
    ExperimentOptions {
        messages: 5,
        realizations: 10,
        seed: 0xF1_604,
        threads,
        wire,
        ..Default::default()
    }
}

/// The summary with the wire-only tallies zeroed — what a wire-mode run
/// must reduce to when the real crypto is subtracted.
fn strip_wire(mut p: PointSummary) -> PointSummary {
    p.sim_counters.wire_packets_built = 0;
    p.sim_counters.wire_packets_peeled = 0;
    p.sim_counters.wire_bytes_sent = 0;
    p.sim_counters.wire_aead_seals = 0;
    p.sim_counters.wire_aead_opens = 0;
    p
}

#[test]
fn wire_mode_changes_nothing_but_wire_counters_at_threads_1_2_8() {
    let cfg = golden_cfg();
    let abstract_json =
        serde_json::to_string(&run_random_graph_point(&cfg, &golden_opts(1, false)))
            .expect("PointSummary serializes");

    let wired_reference = run_random_graph_point(&cfg, &golden_opts(1, true));
    let wired_reference_json =
        serde_json::to_string(&wired_reference).expect("PointSummary serializes");

    for threads in [1usize, 2, 8] {
        let wired = run_random_graph_point(&cfg, &golden_opts(threads, true));

        // The real crypto actually ran.
        let c = &wired.sim_counters;
        assert!(
            c.wire_packets_built > 0,
            "threads={threads}: no packets built"
        );
        assert!(
            c.wire_packets_peeled > 0,
            "threads={threads}: no layers peeled"
        );
        assert!(
            c.wire_aead_seals >= 2 * c.wire_packets_built,
            "K = 2 seals per packet"
        );
        assert_eq!(c.wire_aead_opens, c.wire_packets_peeled);
        assert!(c.wire_bytes_sent > 0);

        // Wire counters (and everything else) are thread-invariant.
        assert_eq!(
            serde_json::to_string(&wired).expect("PointSummary serializes"),
            wired_reference_json,
            "wire-mode summary at threads={threads} drifted from threads=1"
        );

        // Subtract the wire tallies and the summary is byte-identical to
        // the abstract run: enabling real ciphertext perturbed nothing.
        assert_eq!(
            serde_json::to_string(&strip_wire(wired)).expect("PointSummary serializes"),
            abstract_json,
            "wire mode changed abstract results at threads={threads}"
        );
    }
}

#[test]
fn wire_counters_match_committed_golden() {
    let wired = run_random_graph_point(&golden_cfg(), &golden_opts(1, true));
    let computed = serde_json::to_string(&wired.sim_counters).expect("SimCounters serialize");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_WIRE_COUNTERS, format!("{computed}\n"))
            .expect("write golden wire counters");
        eprintln!("updated {GOLDEN_WIRE_COUNTERS}");
    }

    let golden = std::fs::read_to_string(GOLDEN_WIRE_COUNTERS)
        .expect("golden wire counters missing — run with UPDATE_GOLDEN=1 to create them");
    assert_eq!(
        computed,
        golden.trim_end(),
        "wire-mode byte/AEAD counters drifted from the committed golden"
    );
}
