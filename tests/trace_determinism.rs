//! The lifecycle trace must be a pure observer, exactly like metrics:
//! enabling tracing may not perturb a single bit of the experiment
//! results, at any thread count. Also covered here: ring-buffer
//! eviction semantics (a proptest) and the flight recorder's crash
//! bundle — written exactly once for a quarantined trial, parseable,
//! and carrying the seed that deterministically reproduces the panic.

use std::path::PathBuf;

use obs::{CrashBundleHeader, TraceEvent, TraceRing};
use onion_dtn::prelude::*;
use onion_routing::{run_trials_resilient, RunnerConfig};
use proptest::prelude::*;

fn small_point() -> (ProtocolConfig, ExperimentOptions) {
    let cfg = ProtocolConfig {
        nodes: 40,
        group_size: 4,
        onions: 2,
        compromised: 4,
        deadline: TimeDelta::new(240.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 6,
        realizations: 4,
        seed: 0x7E1E_3E7A,
        threads: 1,
        ..Default::default()
    };
    (cfg, opts)
}

/// A scratch directory unique to this test process.
fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("onion-dtn-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One test function (not several) so the global trace toggles cannot
/// race between parallel test threads within this binary — the same
/// structure `telemetry_determinism.rs` uses for the metrics gate.
#[test]
fn trace_on_and_off_produce_bit_identical_summaries_and_crash_bundles() {
    let (cfg, opts) = small_point();

    // ---- Purity: trace off vs on, across thread counts. ----
    obs::set_trace_enabled(false);
    let quiet = run_random_graph_point(&cfg, &opts);

    let dir = scratch_dir("trace-det");
    let trace_path = dir.join("trace.jsonl");
    obs::set_trace_path(Some(&trace_path));
    obs::set_trace_capacity(64); // small cap: exercise eviction mid-run
    obs::set_trace_enabled(true);
    for threads in [1usize, 2, 8] {
        let traced = run_random_graph_point(
            &cfg,
            &ExperimentOptions {
                threads,
                ..opts.clone()
            },
        );
        assert_eq!(
            quiet, traced,
            "tracing must not perturb results (threads={threads})"
        );
        assert_eq!(
            serde_json::to_string(&quiet).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "serialized summaries must be byte-identical (threads={threads})"
        );
    }

    // The trace file filled with parseable per-trial JSONL lines.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(!text.trim().is_empty(), "trace output is non-empty");
    for line in text.lines() {
        let value = serde_json::parse_value(line).expect("trace line parses as JSON");
        assert!(value.get("trial").is_some(), "line carries trial: {line}");
        assert!(value.get("seq").is_some(), "line carries seq: {line}");
        assert!(value.get("event").is_some(), "line carries event: {line}");
    }

    // ---- Flight recorder: quarantined trial -> exactly one bundle. ----
    let crash_dir = scratch_dir("trace-crash");
    for stale in std::fs::read_dir(&crash_dir).expect("list crash dir") {
        std::fs::remove_file(stale.expect("entry").path()).expect("clean crash dir");
    }
    obs::set_crash_sink(&crash_dir, "fingerprint-under-test", 0xF1_604);
    let poisoned_trial = 1usize;
    let job = |trial: usize, _attempt: u32| -> usize {
        obs::trace_ring_begin(trial as u64);
        obs::trace_event(|| TraceEvent::Inject {
            time: 0.0,
            message: trial as u64,
            source: 0,
            destination: 9,
        });
        obs::trace_event(|| TraceEvent::Deliver {
            time: 1.0,
            message: trial as u64,
            node: 9,
        });
        assert!(
            trial != poisoned_trial,
            "poisoned trial {trial} panics deterministically"
        );
        obs::trace_ring_flush();
        trial
    };
    let mut done = Vec::new();
    let failures = run_trials_resilient(&RunnerConfig::new(2), 4, job, &mut done, |acc, _, v| {
        acc.push(v)
    });
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].trial, poisoned_trial);
    assert_eq!(failures[0].attempts, 2);
    assert_eq!(done.len(), 3, "the other trials completed");

    let bundles: Vec<PathBuf> = std::fs::read_dir(&crash_dir)
        .expect("list crash dir")
        .map(|e| e.expect("entry").path())
        .collect();
    assert_eq!(
        bundles.len(),
        1,
        "exactly one crash bundle per quarantined trial: {bundles:?}"
    );
    assert_eq!(
        bundles[0].file_name().and_then(|n| n.to_str()),
        Some("crash-trial1.jsonl")
    );
    let bundle = std::fs::read_to_string(&bundles[0]).expect("read bundle");
    let mut lines = bundle.lines();
    let header: CrashBundleHeader =
        serde_json::from_str(lines.next().expect("header line")).expect("header parses");
    assert_eq!(header.schema, obs::CRASH_BUNDLE_SCHEMA);
    assert_eq!(header.fingerprint, "fingerprint-under-test");
    assert_eq!(header.seed, 0xF1_604);
    assert_eq!(header.trial, poisoned_trial as u64);
    assert_eq!(header.attempts, 2);
    assert!(header.message.contains("poisoned trial 1"));
    assert_eq!(header.events, 2, "both ring events were dumped");
    let events: Vec<TraceEvent> = lines
        .map(|l| {
            let value = serde_json::parse_value(l).expect("event line parses");
            assert!(value.get("seq").is_some());
            // Extra `trial`/`seq` keys are ignored by the decoder: the
            // event fields are flattened into the same object.
            serde_json::from_str::<TraceEvent>(l).expect("event decodes")
        })
        .collect();
    assert_eq!(events.len(), header.events as usize);
    assert!(matches!(events[0], TraceEvent::Inject { message: 1, .. }));
    assert!(matches!(events[1], TraceEvent::Deliver { message: 1, .. }));

    // Replay: the recorded trial id reproduces the panic deterministically.
    let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job(header.trial as usize, 0)
    }));
    assert!(replay.is_err(), "recorded trial must reproduce its panic");

    // ---- Teardown: leave the global recorder as we found it. ----
    obs::clear_crash_sink();
    obs::set_trace_enabled(false);
    obs::set_trace_path(None);
    obs::set_trace_capacity(obs::DEFAULT_TRACE_CAP);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring keeps exactly the newest `cap` events, in push order,
    /// and reports how many older events were evicted.
    #[test]
    fn ring_evicts_oldest_first(cap in 1usize..32, pushes in 0usize..100) {
        let mut ring = TraceRing::new(7, cap);
        for i in 0..pushes {
            ring.push(TraceEvent::FaultCrash { time: i as f64, node: i as u64 });
        }
        prop_assert_eq!(ring.trial(), 7);
        prop_assert_eq!(ring.pushed(), pushes as u64);
        prop_assert_eq!(ring.len(), pushes.min(cap));
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(cap) as u64);
        let survivors: Vec<u64> = ring
            .iter()
            .map(|e| match e {
                TraceEvent::FaultCrash { node, .. } => *node,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        let expected: Vec<u64> =
            (pushes.saturating_sub(cap)..pushes).map(|i| i as u64).collect();
        prop_assert_eq!(survivors, expected, "oldest events evicted first, order kept");
    }
}
