//! Property-based invariants of the routing protocols under randomized
//! networks, workloads, and schedules.

use onion_dtn::prelude::*;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a random scenario and runs the onion protocol, returning
/// everything needed to check invariants.
fn run_scenario(
    seed: u64,
    n: usize,
    g: usize,
    k: usize,
    copies: u32,
    horizon: f64,
) -> (OnionRouting, SimReport, Vec<Message>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = UniformGraphBuilder::new(n).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(horizon), &mut rng);
    let groups = OnionGroups::random_partition(n, g, &mut rng);
    let mode = if copies == 1 {
        ForwardingMode::SingleCopy
    } else {
        ForwardingMode::MultiCopy
    };
    let mut protocol = OnionRouting::new(groups, k, mode);
    let messages: Vec<Message> = (0..8u64)
        .map(|i| {
            let source = NodeId(rng.gen_range(0..n as u32));
            let mut destination = NodeId(rng.gen_range(0..n as u32));
            while destination == source {
                destination = NodeId(rng.gen_range(0..n as u32));
            }
            Message {
                id: MessageId(i),
                source,
                destination,
                created: Time::new(rng.gen_range(0.0..horizon / 4.0)),
                deadline: TimeDelta::new(rng.gen_range(horizon / 4.0..horizon)),
                copies,
            }
        })
        .collect();
    let report = run(
        &schedule,
        &mut protocol,
        messages.clone(),
        &SimConfig::default(),
        &mut rng,
    )
    .expect("valid scenario");
    (protocol, report, messages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_copy_invariants(seed in 0u64..10_000, k in 1usize..5, g in 1usize..6) {
        let n = 40;
        prop_assume!(k <= n / g);
        let (protocol, report, messages) = run_scenario(seed, n, g, k, 1, 300.0);

        for m in &messages {
            // Cost: at most K + 1 transmissions ever.
            prop_assert!(report.transmissions_for(m.id) <= (k + 1) as u64);

            if let Some(path) = report.delivered_path(m.id) {
                // Path structure: source, K relays, destination.
                prop_assert_eq!(path.len(), k + 2);
                prop_assert_eq!(path[0], m.source);
                prop_assert_eq!(*path.last().unwrap(), m.destination);
                // Relays traverse the route's groups in order, and are
                // never the endpoints.
                let route = protocol.route_of(m.id).unwrap();
                for (hop, &relay) in path[1..path.len() - 1].iter().enumerate() {
                    prop_assert!(protocol.groups().contains(route[hop], relay));
                    prop_assert!(relay != m.source && relay != m.destination);
                }
                // Delivered within the deadline.
                let delay = report.delivery_delay(m.id).unwrap();
                prop_assert!(delay.as_f64() <= m.deadline.as_f64() + 1e-9);
            }
        }
    }

    #[test]
    fn multi_copy_invariants(seed in 0u64..10_000, copies in 2u32..6) {
        let (_protocol, report, messages) = run_scenario(seed, 40, 5, 3, copies, 300.0);

        for m in &messages {
            // Paper's bound: at most (K + 2) · L transmissions.
            let bound = analysis::multi_copy_bound(3, copies).unwrap();
            prop_assert!(
                report.transmissions_for(m.id) <= bound,
                "{} > {}", report.transmissions_for(m.id), bound
            );

            // Copy budget: at most L - 1 sprayed (tag-0) receivers, and at
            // most L distinct custodians at any hop position.
            let sprayed = report
                .forward_log()
                .iter()
                .filter(|r| r.message == m.id && r.receiver_tag == 0)
                .count();
            prop_assert!(sprayed <= (copies - 1) as usize);
            let positions = onion_routing::metrics::custodians_per_position(&report, m.id, 4);
            for (i, set) in positions.iter().enumerate().skip(1) {
                prop_assert!(
                    set.len() <= copies as usize,
                    "position {} has {} custodians for L = {}", i, set.len(), copies
                );
            }
        }
    }

    #[test]
    fn forwarding_respects_route_membership(seed in 0u64..10_000) {
        let (protocol, report, messages) = run_scenario(seed, 40, 4, 3, 1, 300.0);
        for rec in report.forward_log() {
            let m = messages.iter().find(|m| m.id == rec.message).unwrap();
            let route = protocol.route_of(rec.message).unwrap();
            let tag = rec.receiver_tag as usize;
            if tag == 0 {
                // Spray does not happen in single-copy mode.
                prop_assert!(false, "single-copy must never emit tag-0 transfers");
            } else if tag <= route.len() {
                // Entering group R_tag.
                prop_assert!(protocol.groups().contains(route[tag - 1], rec.to));
            } else {
                // Final hop to the destination.
                prop_assert_eq!(rec.to, m.destination);
                prop_assert_eq!(tag, route.len() + 1);
            }
        }
    }

    #[test]
    fn no_transfer_after_expiry(seed in 0u64..10_000) {
        let (_p, report, messages) = run_scenario(seed, 30, 3, 2, 1, 200.0);
        for rec in report.forward_log() {
            let m = messages.iter().find(|m| m.id == rec.message).unwrap();
            prop_assert!(rec.time <= m.expires_at(), "transfer after deadline");
            prop_assert!(rec.time >= m.created, "transfer before injection");
        }
    }
}
