//! Chaos battery: crash-safety, deadlines, and hostile clients over
//! real TCP sockets.
//!
//! What the durable store promises (DESIGN.md §4j) is proven here the
//! hard way:
//!
//! * a server restarted onto a tampered store directory — torn tail
//!   appended mid-record plus a bad-CRC record, exactly what a
//!   `kill -9` mid-write leaves behind — replays byte-identical warm
//!   responses without recomputing, and quarantines the damage;
//! * requests that out-wait their deadline in the queue are shed with
//!   `503` + `Retry-After` before any work starts;
//! * a fault sweep that runs out of deadline mid-way returns
//!   `504 deadline_exceeded`, persists the completed rows, and a retry
//!   resumes from them to a byte-identical final answer;
//! * slowloris tricklers are disconnected by the overall read budget
//!   and release their worker slot;
//! * deterministic socket-level garbage never kills the daemon.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

use onion_dtn::prelude::*;
use onion_dtn::serve::http::{read_response, write_request, ErrorBody, Response};
use onion_dtn::serve::store::{crc32, STORE_LOG};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Unique scratch dir per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("onion-dtn-chaos-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Binds port 0 and runs the server on a background thread.
fn start(cfg: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

/// One full request/response exchange on a fresh connection.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, method, path, body).expect("write request");
    read_response(&mut stream).expect("read response")
}

/// Asserts the unified error envelope and returns the `code` string.
fn assert_error_envelope(resp: &Response, want_status: u16) -> String {
    assert_eq!(resp.status, want_status, "{}", resp.body);
    let envelope: ErrorBody =
        serde_json::from_str(&resp.body).expect("error body matches the envelope shape");
    envelope.error.code
}

/// A cheap sweep: fast enough to compute during the warm-up phase of
/// the crash test, expensive enough that recomputing it would be
/// visible in `sweep_computes`.
fn small_point() -> (ProtocolConfig, ExperimentOptions) {
    let cfg = ProtocolConfig {
        nodes: 40,
        group_size: 3,
        onions: 2,
        deadline: TimeDelta::new(360.0),
        compromised: 4,
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 6,
        realizations: 3,
        seed: 0xC4A5,
        ..Default::default()
    };
    (cfg, opts)
}

fn sweep_body(cfg: &ProtocolConfig, opts: &ExperimentOptions) -> String {
    format!(
        "{{\"config\":{},\"opts\":{}}}",
        serde_json::to_string(cfg).unwrap(),
        serde_json::to_string(opts).unwrap(),
    )
}

/// Frames one store record (`len ‖ crc32 ‖ fp_len ‖ fp ‖ body`) the
/// way `serve::store` does, optionally with a deliberately wrong CRC.
fn frame_record(fingerprint: &str, body: &str, corrupt_crc: bool) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(fingerprint.len() as u16).to_le_bytes());
    payload.extend_from_slice(fingerprint.as_bytes());
    payload.extend_from_slice(body.as_bytes());
    let crc = if corrupt_crc {
        0xDEAD_BEEFu32
    } else {
        crc32(&payload)
    };
    let mut record = Vec::new();
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc.to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

#[test]
fn tampered_store_replays_byte_identical_warm_responses_after_restart() {
    let scratch = Scratch::new("restart");
    let (cfg, opts) = small_point();
    let body = sweep_body(&cfg, &opts);

    // Phase 1: warm the store.
    let warm_body = {
        let (handle, join) = start(ServeConfig {
            workers: 2,
            store_dir: Some(scratch.0.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        });
        let resp = exchange(handle.local_addr(), "POST", "/v1/sweep/point", &body);
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(handle.stats().store_writes.load(Ordering::SeqCst), 1);
        handle.shutdown();
        join.join().unwrap();
        resp.body
    };

    // Phase 2: tamper with the log the way a kill -9 mid-write would —
    // a framed record whose CRC doesn't match its payload, then a torn
    // tail (a header promising more bytes than exist).
    let log = scratch.0.join(STORE_LOG);
    let mut bytes = std::fs::read(&log).unwrap();
    bytes.extend_from_slice(&frame_record("poisoned", "{\"bad\":true}", true));
    bytes.extend_from_slice(&500u32.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(b"only a few torn bytes");
    std::fs::write(&log, &bytes).unwrap();

    // Phase 3: restart onto the tampered directory. Recovery must keep
    // the good record, quarantine the bad-CRC one, truncate the tear —
    // and the warm response must come back byte-identical from disk.
    let (handle, join) = start(ServeConfig {
        workers: 2,
        store_dir: Some(scratch.0.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let stats = handle.stats();
    assert_eq!(
        stats.store_records_quarantined.load(Ordering::SeqCst),
        1,
        "the bad-CRC record is counted at recovery"
    );

    let warm = exchange(addr, "POST", "/v1/sweep/point", &body);
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(warm.body, warm_body, "store replay must be byte-identical");
    assert_eq!(
        stats.sweep_computes.load(Ordering::SeqCst),
        0,
        "the warm response must not be recomputed"
    );
    assert!(stats.store_hits.load(Ordering::SeqCst) >= 1);

    // The promoted LRU entry serves the next hit without the store.
    let again = exchange(addr, "POST", "/v1/sweep/point", &body);
    assert_eq!(again.body, warm_body);
    assert!(stats.cache_hits.load(Ordering::SeqCst) >= 1);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn requests_expiring_in_the_queue_are_shed_with_503() {
    // One worker with a sub-second deadline: while it grinds a slow
    // sweep, a queued request out-waits its deadline and must be shed
    // at dequeue without ever counting as in-flight.
    let (handle, join) = start(ServeConfig {
        workers: 1,
        request_deadline_secs: 0.5,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let cfg = ProtocolConfig {
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 10,
        realizations: 16,
        seed: 0x5EED,
        ..Default::default()
    };
    let body = sweep_body(&cfg, &opts);

    // Occupy the only worker (dequeued immediately, so its own
    // deadline check at compute start passes)...
    let mut busy = TcpStream::connect(addr).expect("connect busy");
    write_request(&mut busy, "POST", "/v1/sweep/point", &body).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // ...then queue a request that will expire long before the worker
    // frees up.
    let mut expired = TcpStream::connect(addr).expect("connect expired");
    write_request(&mut expired, "GET", "/healthz", "").unwrap();
    let shed = read_response(&mut expired).expect("read shed response");
    assert_eq!(assert_error_envelope(&shed, 503), "overloaded");
    assert_eq!(shed.retry_after, Some(1));
    assert_eq!(
        handle.stats().deadline_queue_expired.load(Ordering::SeqCst),
        1
    );

    // The slow request itself still completes.
    assert_eq!(read_response(&mut busy).unwrap().status, 200);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn mid_sweep_deadline_returns_504_and_a_retry_resumes_from_persisted_rows() {
    let scratch = Scratch::new("deadline");
    // Rows take multiple seconds each (full Table II graph); the
    // deadline expires during row 0, so the sweep is cancelled at the
    // row boundary with row 0 already persisted. This stays
    // deterministic at any machine speed as long as one row outlasts
    // 400 ms, which this configuration does by a wide margin.
    let (handle, join) = start(ServeConfig {
        workers: 2,
        store_dir: Some(scratch.0.to_string_lossy().into_owned()),
        request_deadline_secs: 0.4,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let stats = handle.stats();

    let cfg = ProtocolConfig {
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 10,
        realizations: 12,
        seed: 0xFA01,
        ..Default::default()
    };
    let plan = FaultPlan {
        churn: None,
        contact_failure: 0.3,
        transfer_truncation: 0.0,
        message_loss: 0.0,
    };
    let intensities = [0.0, 1.0];
    let body = format!(
        "{{\"config\":{},\"opts\":{},\"plan\":{},\"intensities\":[0.0,1.0]}}",
        serde_json::to_string(&cfg).unwrap(),
        serde_json::to_string(&opts).unwrap(),
        serde_json::to_string(&plan).unwrap(),
    );

    // First attempt: row 0 completes (work started before the deadline
    // runs to the next row boundary), row 1 is cancelled → 504.
    let first = exchange(addr, "POST", "/v1/sweep/fault", &body);
    assert_eq!(assert_error_envelope(&first, 504), "deadline_exceeded");
    assert!(
        first.body.contains("1 of 2"),
        "the envelope reports partial progress: {}",
        first.body
    );
    assert_eq!(stats.deadline_exceeded.load(Ordering::SeqCst), 1);
    assert_eq!(
        stats.store_row_writes.load(Ordering::SeqCst),
        1,
        "the completed row is persisted before the 504"
    );

    // Retry: row 0 replays from the store instantly; row 1 starts well
    // within the deadline and — once started — runs to completion.
    let retry = exchange(addr, "POST", "/v1/sweep/fault", &body);
    assert_eq!(retry.status, 200, "{}", retry.body);
    assert!(stats.store_row_hits.load(Ordering::SeqCst) >= 1);

    // The resumed answer is byte-identical to an uninterrupted offline
    // run of the same sweep.
    let offline = SweepSpec::random_graph(cfg)
        .over_faults(plan, &intensities)
        .run(&opts)
        .into_fault()
        .expect("fault rows");
    assert_eq!(retry.body, serde_json::to_string(&offline).unwrap());

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn slowloris_trickler_is_disconnected_and_frees_its_worker() {
    // One worker, one-second read budget: a client trickling a byte at
    // a time arrives too fast for a per-read socket timeout but must be
    // cut off by the overall budget.
    let (handle, join) = start(ServeConfig {
        workers: 1,
        read_timeout_secs: 1.0,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    let trickler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect trickler");
        let head = b"GET /healthz HTTP/1.1\r\nHost: slow\r\n\r\n";
        for chunk in head.chunks(1) {
            if stream.write_all(chunk).is_err() {
                return true; // disconnected mid-trickle
            }
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(250));
        }
        // Finished the whole head without being cut: the server never
        // enforced the budget (2.5 s of trickling >> the 1 s budget) —
        // unless the response below errors out, that's a failure.
        read_response(&mut stream).is_err()
    });

    // While the trickler holds (then loses) the only worker, a healthy
    // request queued behind it must still be served promptly.
    let resp = exchange(addr, "GET", "/healthz", "");
    assert_eq!(resp.status, 200);

    assert!(
        trickler.join().unwrap(),
        "the trickler must be disconnected by the read budget"
    );
    // The worker slot is free again: nothing in flight once the dust
    // settles.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(handle.stats().inflight.load(Ordering::SeqCst), 0);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn deterministic_socket_garbage_never_kills_the_server() {
    let (handle, join) = start(ServeConfig {
        workers: 2,
        read_timeout_secs: 1.0,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    let mut rng = ChaCha8Rng::seed_from_u64(0xC4A0_5CAF);
    for round in 0..40 {
        let mut blob = vec![0u8; rng.gen_range(1..512usize)];
        for b in &mut blob {
            *b = rng.gen::<u8>();
        }
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.write_all(&blob);
        let _ = stream.flush();
        // Whatever comes back — a 4xx envelope or a straight close
        // (read error) — it must be a clean socket-level outcome, not a
        // hung worker.
        if let Ok(resp) = read_response(&mut stream) {
            assert!(
                (400..500).contains(&resp.status),
                "round {round}: garbage must map to 4xx, got {}",
                resp.status
            );
        }
    }

    // The daemon is still healthy after the barrage (a panicking worker
    // or acceptor would poison `run()` and fail the join below).
    let resp = exchange(addr, "GET", "/healthz", "");
    assert_eq!(resp.status, 200);
    handle.shutdown();
    join.join().unwrap();
}
