//! Serde round-trips for the public data structures (C-SERDE): contact
//! graphs, schedules, configs, and simulation reports survive
//! serialization, so experiments can be checkpointed and shipped.

use onion_dtn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn json_roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let text = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&text).expect("deserialize")
}

#[test]
fn contact_graph_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = UniformGraphBuilder::new(20).build(&mut rng);
    let back: ContactGraph = json_roundtrip(&graph);
    assert_eq!(back, graph);
    assert_eq!(
        back.rate(NodeId(0), NodeId(7)),
        graph.rate(NodeId(0), NodeId(7))
    );
}

#[test]
fn schedule_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graph = UniformGraphBuilder::new(10).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(50.0), &mut rng);
    let back: ContactSchedule = json_roundtrip(&schedule);
    assert_eq!(back, schedule);
}

#[test]
fn message_and_config_roundtrip() {
    let m = Message {
        id: MessageId(42),
        source: NodeId(1),
        destination: NodeId(2),
        created: Time::new(10.0),
        deadline: TimeDelta::new(100.0),
        copies: 3,
    };
    assert_eq!(json_roundtrip(&m), m);

    let cfg = ProtocolConfig::table2_defaults();
    assert_eq!(json_roundtrip(&cfg), cfg);
}

#[test]
fn sim_config_roundtrip() {
    use dtn_sim::DropPolicy;

    // The paper's default (unlimited buffers) and a constrained
    // variant both survive checkpointing.
    let default = SimConfig::default();
    assert_eq!(json_roundtrip(&default), default);

    let constrained = SimConfig {
        record_forwarding: false,
        reject_seen: false,
        buffer_capacity: Some(8),
        drop_policy: DropPolicy::DropOldest,
        wire_mode: true,
    };
    assert_eq!(json_roundtrip(&constrained), constrained);

    for policy in [DropPolicy::DropIncoming, DropPolicy::DropOldest] {
        assert_eq!(json_roundtrip(&policy), policy);
    }
}

#[test]
fn sim_counters_roundtrip() {
    use dtn_sim::SimCounters;

    let counters = SimCounters {
        contacts: 1000,
        forwards_handoff: 40,
        forwards_split: 7,
        forwards_replicate: 12,
        rejected_forwards: 3,
        buffer_drops: 2,
        buffer_evictions: 1,
        deadline_expiries: 5,
        injected: 25,
        delivered: 21,
        expired: 4,
        fault_crashes: 6,
        fault_contacts_dropped: 9,
        fault_transfers_truncated: 2,
        fault_buffer_wipes: 8,
        fault_messages_lost: 3,
        wire_packets_built: 25,
        wire_packets_peeled: 75,
        wire_bytes_sent: 819_800,
        wire_aead_seals: 75,
        wire_aead_opens: 75,
    };
    assert_eq!(json_roundtrip(&counters), counters);

    // Abstract-mode counters serialize without the wire fields at all
    // (the legacy shape), and still deserialize — wire fields default
    // to zero when absent, so old checkpoints load unchanged.
    let abstract_only = SimCounters {
        contacts: 7,
        injected: 2,
        delivered: 1,
        ..SimCounters::default()
    };
    let text = serde_json::to_string(&abstract_only).expect("serialize");
    assert!(
        !text.contains("wire_"),
        "abstract counters must keep the legacy serialization shape"
    );
    assert_eq!(
        serde_json::from_str::<SimCounters>(&text).expect("deserialize"),
        abstract_only
    );
    assert_eq!(
        json_roundtrip(&SimCounters::default()),
        SimCounters::default()
    );
}

#[test]
fn groups_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let groups = OnionGroups::random_partition(30, 4, &mut rng);
    let back: OnionGroups = json_roundtrip(&groups);
    assert_eq!(back, groups);
    for node in (0..30).map(NodeId) {
        assert_eq!(back.group_of(node), groups.group_of(node));
    }
}

#[test]
fn streaming_stats_roundtrip_preserves_moments_exactly() {
    use dtn_sim::StreamingStats;

    let mut stats = StreamingStats::new();
    for i in 0..64 {
        stats.push((i as f64) * 0.37 - 5.5);
    }
    let back: StreamingStats = json_roundtrip(&stats);
    assert_eq!(back, stats);
    // Bit-exact moments: checkpoint/resume must not perturb a running
    // aggregation (serde_json float_roundtrip semantics).
    assert_eq!(
        back.mean().unwrap().to_bits(),
        stats.mean().unwrap().to_bits()
    );
    assert_eq!(
        back.variance().unwrap().to_bits(),
        stats.variance().unwrap().to_bits()
    );
    assert_eq!(back.min(), stats.min());
    assert_eq!(back.max(), stats.max());

    // Empty stats (None min/max) survive too.
    let empty = StreamingStats::new();
    assert_eq!(json_roundtrip(&empty), empty);
}

#[test]
fn report_aggregate_roundtrip() {
    use dtn_sim::ReportAggregate;

    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let graph = UniformGraphBuilder::new(20).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(120.0), &mut rng);
    let groups = OnionGroups::random_partition(20, 2, &mut rng);
    let mut protocol = OnionRouting::new(groups, 2, ForwardingMode::SingleCopy);
    let messages: Vec<Message> = (0..4)
        .map(|i| Message {
            id: MessageId(i),
            source: NodeId(i as u32),
            destination: NodeId(19 - i as u32),
            created: Time::ZERO,
            deadline: TimeDelta::new(120.0),
            copies: 1,
        })
        .collect();
    let report = run(
        &schedule,
        &mut protocol,
        messages,
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();

    let mut agg = ReportAggregate::new();
    agg.push(&report);
    agg.push(&report);
    let back: ReportAggregate = json_roundtrip(&agg);
    assert_eq!(back, agg);
    assert_eq!(back.pooled_delivery_rate(), agg.pooled_delivery_rate());
    assert_eq!(back.delay().count(), agg.delay().count());
}

#[test]
fn runner_and_experiment_config_roundtrip() {
    use onion_routing::{RunnerConfig, SeedDomain};

    let runner = RunnerConfig::new(8);
    assert_eq!(json_roundtrip(&runner), runner);
    assert_eq!(
        json_roundtrip(&RunnerConfig::default()),
        RunnerConfig::default()
    );

    for domain in [
        SeedDomain::GraphRealization,
        SeedDomain::ScheduleRealization,
        SeedDomain::ScheduleStarts,
        SeedDomain::SecurityGraph,
        SeedDomain::SecuritySchedule,
        SeedDomain::SecurityStarts,
        SeedDomain::ModelValidation,
        SeedDomain::Faults,
        SeedDomain::Wire,
    ] {
        assert_eq!(json_roundtrip(&domain), domain);
    }

    let opts = ExperimentOptions {
        messages: 12,
        realizations: 7,
        seed: 0xDEAD_BEEF,
        intercontact_range: (1.0, 36.0),
        threads: 3,
        ..Default::default()
    };
    assert_eq!(json_roundtrip(&opts), opts);
}

#[test]
fn point_summary_roundtrip() {
    let cfg = ProtocolConfig {
        nodes: 40,
        group_size: 4,
        onions: 2,
        compromised: 4,
        deadline: TimeDelta::new(240.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 6,
        realizations: 2,
        seed: 5,
        ..Default::default()
    };
    let point = run_random_graph_point(&cfg, &opts);
    let back: PointSummary = json_roundtrip(&point);
    assert_eq!(back, point);
    assert_eq!(
        back.delivery_stats.mean().map(f64::to_bits),
        point.delivery_stats.mean().map(f64::to_bits)
    );
}

#[test]
fn trace_event_roundtrip_covers_every_variant() {
    use obs::TraceEvent;

    let events = [
        TraceEvent::Inject {
            time: 0.5,
            message: 1,
            source: 2,
            destination: 3,
        },
        TraceEvent::Seal {
            time: 0.5,
            message: 1,
            node: 2,
            layers: 3,
        },
        TraceEvent::Forward {
            time: 1.25,
            message: 1,
            from: 2,
            to: 7,
            kind: "handoff".to_string(),
            route_group: 1,
        },
        TraceEvent::Peel {
            time: 1.25,
            message: 1,
            node: 7,
        },
        TraceEvent::Deliver {
            time: 9.0,
            message: 1,
            node: 3,
        },
        TraceEvent::Drop {
            time: 2.0,
            message: 4,
            node: 5,
        },
        TraceEvent::Expire {
            time: 3.0,
            message: 4,
            node: 5,
        },
        TraceEvent::FaultCrash { time: 4.0, node: 6 },
        TraceEvent::FaultBufferWipe {
            time: 4.0,
            node: 6,
            message: 4,
        },
        TraceEvent::FaultContactDrop {
            time: 5.0,
            a: 1,
            b: 2,
        },
        TraceEvent::FaultTransferTruncated {
            time: 6.0,
            from: 1,
            to: 2,
        },
        TraceEvent::FaultMessageLost {
            time: 7.0,
            message: 4,
            from: 1,
            to: 2,
        },
    ];
    for event in &events {
        assert_eq!(&json_roundtrip(event), event);
    }
    // The wire tags are the stable JSONL vocabulary.
    let text = serde_json::to_string(&events[0]).unwrap();
    assert!(text.contains("\"inject\""), "{text}");
    let text = serde_json::to_string(&events[7]).unwrap();
    assert!(text.contains("\"fault_crash\""), "{text}");
}

#[test]
fn crash_bundle_header_roundtrip() {
    use obs::{CrashBundleHeader, CRASH_BUNDLE_SCHEMA};

    let header = CrashBundleHeader {
        schema: CRASH_BUNDLE_SCHEMA,
        fingerprint: "deadbeef".to_string(),
        seed: 0xF1_604,
        trial: 3,
        attempts: 2,
        message: "forced panic for trial 3".to_string(),
        events: 17,
        dropped: 5,
    };
    let back = json_roundtrip(&header);
    assert_eq!(back.schema, header.schema);
    assert_eq!(back.fingerprint, header.fingerprint);
    assert_eq!(back.seed, header.seed);
    assert_eq!(back.trial, header.trial);
    assert_eq!(back.attempts, header.attempts);
    assert_eq!(back.message, header.message);
    assert_eq!(back.events, header.events);
    assert_eq!(back.dropped, header.dropped);
}

#[test]
fn sim_report_roundtrip_preserves_metrics() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let graph = UniformGraphBuilder::new(20).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(120.0), &mut rng);
    let groups = OnionGroups::random_partition(20, 2, &mut rng);
    let mut protocol = OnionRouting::new(groups, 2, ForwardingMode::SingleCopy);
    let m = Message {
        id: MessageId(0),
        source: NodeId(0),
        destination: NodeId(19),
        created: Time::ZERO,
        deadline: TimeDelta::new(120.0),
        copies: 1,
    };
    let report = run(
        &schedule,
        &mut protocol,
        vec![m],
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    let back: SimReport = json_roundtrip(&report);
    assert_eq!(back.delivery_rate(), report.delivery_rate());
    assert_eq!(back.total_transmissions(), report.total_transmissions());
    assert_eq!(
        back.delivered_path(MessageId(0)),
        report.delivered_path(MessageId(0))
    );
}
