//! Serde round-trips for the public data structures (C-SERDE): contact
//! graphs, schedules, configs, and simulation reports survive
//! serialization, so experiments can be checkpointed and shipped.

use onion_dtn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn json_roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let text = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&text).expect("deserialize")
}

#[test]
fn contact_graph_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = UniformGraphBuilder::new(20).build(&mut rng);
    let back: ContactGraph = json_roundtrip(&graph);
    assert_eq!(back, graph);
    assert_eq!(
        back.rate(NodeId(0), NodeId(7)),
        graph.rate(NodeId(0), NodeId(7))
    );
}

#[test]
fn schedule_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graph = UniformGraphBuilder::new(10).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(50.0), &mut rng);
    let back: ContactSchedule = json_roundtrip(&schedule);
    assert_eq!(back, schedule);
}

#[test]
fn message_and_config_roundtrip() {
    let m = Message {
        id: MessageId(42),
        source: NodeId(1),
        destination: NodeId(2),
        created: Time::new(10.0),
        deadline: TimeDelta::new(100.0),
        copies: 3,
    };
    assert_eq!(json_roundtrip(&m), m);

    let cfg = ProtocolConfig::table2_defaults();
    assert_eq!(json_roundtrip(&cfg), cfg);
}

#[test]
fn groups_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let groups = OnionGroups::random_partition(30, 4, &mut rng);
    let back: OnionGroups = json_roundtrip(&groups);
    assert_eq!(back, groups);
    for node in (0..30).map(NodeId) {
        assert_eq!(back.group_of(node), groups.group_of(node));
    }
}

#[test]
fn sim_report_roundtrip_preserves_metrics() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let graph = UniformGraphBuilder::new(20).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(120.0), &mut rng);
    let groups = OnionGroups::random_partition(20, 2, &mut rng);
    let mut protocol = OnionRouting::new(groups, 2, ForwardingMode::SingleCopy);
    let m = Message {
        id: MessageId(0),
        source: NodeId(0),
        destination: NodeId(19),
        created: Time::ZERO,
        deadline: TimeDelta::new(120.0),
        copies: 1,
    };
    let report = run(
        &schedule,
        &mut protocol,
        vec![m],
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    let back: SimReport = json_roundtrip(&report);
    assert_eq!(back.delivery_rate(), report.delivery_rate());
    assert_eq!(back.total_transmissions(), report.total_transmissions());
    assert_eq!(
        back.delivered_path(MessageId(0)),
        report.delivered_path(MessageId(0))
    );
}
