//! The parallel runner's headline invariant, property-tested: for the
//! same seed, experiment reports are **bit-identical** no matter how
//! many worker threads ran the realizations.
//!
//! Two layers: a cheap pure-fold property hammered over many cases, and
//! a full experiment-pipeline property (graph → groups → simulation →
//! metrics) at a handful of cases since each one runs real simulations.

use contact_graph::TimeDelta;
use onion_routing::{
    run_random_graph_point, run_trials, trial_rng, ExperimentOptions, ProtocolConfig, RunnerConfig,
    SeedDomain,
};
use proptest::prelude::*;
use rand::Rng;

/// Sums a seeded pseudo-random series through the runner. Floating-point
/// addition is not associative, so this is bit-identical across thread
/// counts only if the fold order really is scheduling-independent.
fn fold_sum(threads: usize, seed: u64, trials: usize) -> (u64, u64) {
    let mut sum = 0.0f64;
    let mut order_check = 0u64;
    run_trials(
        &RunnerConfig::new(threads),
        trials,
        |i| {
            let mut rng = trial_rng(seed, SeedDomain::ModelValidation, i as u64);
            rng.gen_range(-1.0e6..1.0e6)
        },
        &mut (&mut sum, &mut order_check),
        |acc, i, x| {
            *acc.0 += x;
            // Rolling hash of the fold sequence: detects any reordering
            // even where the sum happens to agree.
            *acc.1 = acc.1.wrapping_mul(31).wrapping_add(i as u64);
        },
    );
    (sum.to_bits(), order_check)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fold_is_bit_identical_across_thread_counts(
        seed in any::<u64>(),
        trials in 1usize..200,
    ) {
        let serial = fold_sum(1, seed, trials);
        for threads in [2usize, 8] {
            prop_assert_eq!(serial, fold_sum(threads, seed, trials), "threads = {}", threads);
        }
    }
}

proptest! {
    // Each case runs 3 × 3 real simulations; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn experiment_reports_are_bit_identical_across_thread_counts(seed in any::<u64>()) {
        let cfg = ProtocolConfig {
            nodes: 40,
            group_size: 4,
            onions: 2,
            compromised: 4,
            deadline: TimeDelta::new(240.0),
            ..ProtocolConfig::table2_defaults()
        };
        let base = ExperimentOptions {
            messages: 6,
            realizations: 3,
            seed,
            threads: 1,
            ..Default::default()
        };
        let serial = run_random_graph_point(&cfg, &base);
        for threads in [2usize, 8] {
            let parallel = run_random_graph_point(
                &cfg,
                &ExperimentOptions { threads, ..base.clone() },
            );
            // Bit-level equality of every floating-point series, not
            // approximate agreement.
            prop_assert_eq!(
                serial.analysis_delivery.to_bits(),
                parallel.analysis_delivery.to_bits()
            );
            prop_assert_eq!(serial.sim_delivery.to_bits(), parallel.sim_delivery.to_bits());
            prop_assert_eq!(
                serial.sim_transmissions.to_bits(),
                parallel.sim_transmissions.to_bits()
            );
            prop_assert_eq!(
                serial.sim_traceable.map(f64::to_bits),
                parallel.sim_traceable.map(f64::to_bits)
            );
            prop_assert_eq!(
                serial.sim_anonymity.map(f64::to_bits),
                parallel.sim_anonymity.map(f64::to_bits)
            );
            // Structural equality of the whole summary (counts, streaming
            // stats) on top of the bit checks above.
            prop_assert_eq!(&serial, &parallel, "threads = {}", threads);
        }
    }
}
