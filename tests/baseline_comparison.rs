//! Cross-protocol integration: the anonymity/performance orderings between
//! onion routing and the classical baselines hold on shared workloads.

use dtn_sim::baselines::{DirectDelivery, Epidemic, FirstContact, SprayAndWait};
use onion_dtn::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Scenario {
    schedule: ContactSchedule,
    messages: Vec<Message>,
}

fn scenario(seed: u64, copies: u32) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = UniformGraphBuilder::new(50).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(240.0), &mut rng);
    let messages = (0..25u64)
        .map(|i| {
            let source = NodeId(rng.gen_range(0..50));
            let mut destination = NodeId(rng.gen_range(0..50));
            while destination == source {
                destination = NodeId(rng.gen_range(0..50));
            }
            Message {
                id: MessageId(i),
                source,
                destination,
                created: Time::ZERO,
                deadline: TimeDelta::new(240.0),
                copies,
            }
        })
        .collect();
    Scenario { schedule, messages }
}

fn run_protocol<P: RoutingProtocol>(s: &Scenario, protocol: &mut P, seed: u64) -> SimReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    run(
        &s.schedule,
        protocol,
        s.messages.clone(),
        &SimConfig::default(),
        &mut rng,
    )
    .expect("valid scenario")
}

#[test]
fn epidemic_dominates_everything_in_delivery() {
    let s = scenario(1, 1);
    let epidemic = run_protocol(&s, &mut Epidemic, 100);
    let direct = run_protocol(&s, &mut DirectDelivery, 100);
    let first = run_protocol(&s, &mut FirstContact, 100);
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let groups = OnionGroups::random_partition(50, 5, &mut rng);
    let onion = run_protocol(
        &s,
        &mut OnionRouting::new(groups, 3, ForwardingMode::SingleCopy),
        100,
    );

    assert!(epidemic.delivery_rate() >= direct.delivery_rate());
    assert!(epidemic.delivery_rate() >= first.delivery_rate());
    assert!(epidemic.delivery_rate() >= onion.delivery_rate());
    // And pays the highest cost.
    assert!(epidemic.total_transmissions() >= onion.total_transmissions());
    assert!(epidemic.total_transmissions() >= direct.total_transmissions());
}

#[test]
fn onion_detour_costs_more_than_direct_but_stays_bounded() {
    let s = scenario(2, 1);
    let direct = run_protocol(&s, &mut DirectDelivery, 7);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let groups = OnionGroups::random_partition(50, 5, &mut rng);
    let onion = run_protocol(
        &s,
        &mut OnionRouting::new(groups, 3, ForwardingMode::SingleCopy),
        7,
    );

    // Direct: exactly one transmission per delivered message.
    assert_eq!(
        direct.total_transmissions(),
        direct.delivered_count() as u64
    );
    // Onion: each delivered message costs exactly K + 1 = 4; partial
    // progress costs at most K.
    for &id in onion.injected() {
        let tx = onion.transmissions_for(id);
        if onion.delivery_time(id).is_some() {
            assert_eq!(tx, 4, "delivered message must cost K + 1");
        } else {
            assert!(tx <= 3, "undelivered single-copy exceeded K transfers");
        }
    }
}

#[test]
fn spray_and_wait_sits_between_direct_and_epidemic() {
    let s = scenario(3, 4);
    let direct = run_protocol(&s, &mut DirectDelivery, 9);
    let spray = run_protocol(&s, &mut SprayAndWait::source(), 9);
    let epidemic = run_protocol(&s, &mut Epidemic, 9);

    assert!(spray.delivery_rate() >= direct.delivery_rate() - 0.04);
    assert!(spray.delivery_rate() <= epidemic.delivery_rate() + 1e-9);
    assert!(spray.total_transmissions() <= epidemic.total_transmissions());
}

#[test]
fn binary_spray_spreads_at_least_as_fast_as_source_spray() {
    let s = scenario(4, 8);
    let source = run_protocol(&s, &mut SprayAndWait::source(), 11);
    let binary = run_protocol(&s, &mut SprayAndWait::binary(), 11);
    // Binary spray disseminates copies strictly faster in expectation;
    // allow a small tolerance for this finite sample.
    assert!(binary.delivery_rate() >= source.delivery_rate() - 0.05);
}

#[test]
fn multi_copy_onion_beats_single_copy_delivery_under_tight_deadline() {
    let mut single_total = 0.0;
    let mut multi_total = 0.0;
    for seed in 0..5u64 {
        let s1 = scenario(40 + seed, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(13 + seed);
        let groups = OnionGroups::random_partition(50, 5, &mut rng);
        let single = run_protocol(
            &s1,
            &mut OnionRouting::new(groups.clone(), 3, ForwardingMode::SingleCopy),
            13 + seed,
        );
        let s3 = scenario(40 + seed, 3);
        let multi = run_protocol(
            &s3,
            &mut OnionRouting::new(groups, 3, ForwardingMode::MultiCopy),
            13 + seed,
        );
        single_total += single.delivery_rate();
        multi_total += multi.delivery_rate();
    }
    assert!(
        multi_total >= single_total,
        "multi-copy should deliver at least as much: {multi_total} vs {single_total}"
    );
}

#[test]
fn anonymity_ordering_onion_beats_baselines() {
    // Baselines expose the full path to a path-observing adversary (no
    // layered encryption): model them as g = 1 effective anonymity, vs
    // the onion's g = 5.
    let onion = analysis::path_anonymity(50, 5, 3, 10, 1).expect("valid");
    let baseline = analysis::path_anonymity(50, 1, 3, 10, 1).expect("valid");
    assert!(onion > baseline);
}
