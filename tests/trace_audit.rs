//! Empirical traceability from lifecycle traces.
//!
//! The trace-based path auditor ([`onion_routing::TraceAudit`]) and the
//! report-based metrics ([`onion_routing::metrics`]) derive the same
//! security quantities from entirely separate data paths: one folds the
//! `obs` event journal the engine emits, the other folds the
//! simulator's forwarding log. This test pins both levels of agreement
//! on the fig04-small configuration:
//!
//! 1. **Per-trial, exact**: for every trial and adversary draw, the
//!    audit's traceable rate and path anonymity equal the metrics
//!    values bit for bit.
//! 2. **Monte-Carlo, closed-form**: the empirical mean traceable rate
//!    over all trials matches `analysis::expected_traceable_rate`
//!    within sampling tolerance, and anonymity stays in `(0, 1]`.

use onion_dtn::prelude::*;
use onion_routing::{metrics, Adversary, TraceAudit};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One test function so the global trace toggle cannot race other
/// tests in this binary.
#[test]
fn audit_from_trace_matches_report_metrics_and_closed_form() {
    // fig04-small shape: 40 nodes, g=5, K=2 (eta=3), c=4.
    let n = 40usize;
    let g = 5usize;
    let k = 2usize;
    let eta = k + 1;
    let c = 4usize;
    let trials = 60usize;
    let messages = 5u64;

    obs::set_trace_enabled(true);

    let mut empirical_sum = 0.0;
    let mut empirical_count = 0usize;
    let mut audited_messages = 0usize;
    for trial in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF1_604 ^ (trial as u64) << 17);
        let graph = UniformGraphBuilder::new(n).build(&mut rng);
        let schedule = ContactSchedule::sample(&graph, Time::new(1080.0), &mut rng);
        let groups = OnionGroups::random_partition(n, g, &mut rng);
        let mut protocol = OnionRouting::new(groups, k, ForwardingMode::SingleCopy);
        let msgs: Vec<Message> = (0..messages)
            .map(|i| Message {
                id: MessageId(i),
                source: NodeId(i as u32),
                destination: NodeId((n as u32) - 1 - i as u32),
                created: Time::ZERO,
                deadline: TimeDelta::new(1080.0),
                copies: 1,
            })
            .collect();

        obs::trace_ring_begin(trial as u64);
        let report = run(
            &schedule,
            &mut protocol,
            msgs,
            &SimConfig::default(),
            &mut rng,
        )
        .expect("simulation runs");
        let ring = obs::trace_ring_take().expect("tracing captured the trial");
        assert_eq!(
            ring.dropped(),
            0,
            "default capacity holds a small trial in full"
        );
        let audit = TraceAudit::from_events(&ring.into_events());

        assert_eq!(audit.message_count(), messages as usize);
        audited_messages += audit.message_count();

        // The trace reconstructs the same winning custody chain the
        // report's forwarding log yields, message by message.
        for i in 0..messages {
            let from_trace = audit.delivered_path(i);
            let from_report = report.delivered_path(MessageId(i)).map(|p| p.to_vec());
            assert_eq!(from_trace, from_report, "trial {trial} message {i}");
        }

        // Exact agreement under several independent adversary draws.
        for draw in 0..3u64 {
            let mut adv_rng = ChaCha8Rng::seed_from_u64(0xAD5A ^ (trial as u64) << 8 ^ draw);
            let adversary = Adversary::random(n, c, &mut adv_rng);
            let audit_rate = audit.mean_traceable_rate(&adversary);
            let report_rate = metrics::mean_traceable_rate(&report, &adversary);
            assert_eq!(
                audit_rate.map(f64::to_bits),
                report_rate.map(f64::to_bits),
                "trial {trial} draw {draw}: traceable rates must be bit-identical"
            );
            let audit_anon = audit.mean_path_anonymity(&adversary, n, g, eta);
            let report_anon = metrics::mean_path_anonymity(&report, &adversary, n, g, eta);
            assert_eq!(
                audit_anon.map(f64::to_bits),
                report_anon.map(f64::to_bits),
                "trial {trial} draw {draw}: anonymity must be bit-identical"
            );
            if let Some(anon) = audit_anon {
                assert!((0.0..=1.0).contains(&anon) && anon > 0.0);
            }
            if draw == 0 {
                if let Some(rate) = audit_rate {
                    empirical_sum += rate;
                    empirical_count += 1;
                }
            }
        }
    }
    assert_eq!(audited_messages, trials * messages as usize);
    assert!(
        empirical_count >= trials / 2,
        "most trials deliver something ({empirical_count}/{trials})"
    );

    // Monte-Carlo agreement with the closed form (Eqs. 8-12): the
    // empirical mean traceable rate over all delivered paths matches
    // E[traceable] for eta hops at compromise probability c/n, within
    // generous sampling tolerance.
    let empirical = empirical_sum / empirical_count as f64;
    let expected =
        analysis::expected_traceable_rate(eta, c as f64 / n as f64).expect("closed form evaluates");
    assert!(
        (empirical - expected).abs() < 0.06,
        "empirical {empirical:.4} vs closed-form {expected:.4} outside Monte-Carlo tolerance"
    );

    obs::set_trace_enabled(false);
}
