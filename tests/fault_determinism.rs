//! Determinism contracts for the fault-injection layer:
//!
//! * a zero-rate fault plan is **bit-identical** to running without any
//!   fault support at all (no stray RNG draws);
//! * faulted experiments are bit-identical across thread counts (faults
//!   draw from their own per-trial seed domain, never shared state);
//! * a checkpointed sweep killed mid-run and resumed — including from a
//!   torn final line — reproduces the uninterrupted results
//!   byte-for-byte;
//! * a deliberately panicking trial is quarantined without aborting the
//!   sweep, and the retry seed is deterministic.

use onion_dtn::prelude::*;
use proptest::prelude::*;

fn small_cfg() -> ProtocolConfig {
    ProtocolConfig {
        nodes: 40,
        group_size: 4,
        onions: 2,
        compromised: 4,
        deadline: TimeDelta::new(240.0),
        ..ProtocolConfig::table2_defaults()
    }
}

fn small_opts(seed: u64) -> ExperimentOptions {
    ExperimentOptions {
        messages: 6,
        realizations: 3,
        seed,
        threads: 2,
        ..Default::default()
    }
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        churn: Some(ChurnConfig {
            crash_rate: 0.004,
            mean_downtime: 60.0,
            memory: ChurnMemory::Forget,
        }),
        contact_failure: 0.15,
        transfer_truncation: 0.1,
        message_loss: 0.05,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any zero-rate plan — with or without a zero-rate churn block —
    /// must be indistinguishable from the fault-free baseline, down to
    /// the last bit of the serialized summary.
    #[test]
    fn zero_rate_plan_is_bit_identical_to_baseline(
        seed in 0u64..1000,
        with_churn_block in any::<bool>(),
        forget in any::<bool>(),
    ) {
        let cfg = small_cfg();
        let baseline = run_random_graph_point(&cfg, &small_opts(seed));
        let zero_plan = FaultPlan {
            churn: with_churn_block.then_some(ChurnConfig {
                crash_rate: 0.0,
                mean_downtime: 60.0,
                memory: if forget { ChurnMemory::Forget } else { ChurnMemory::Persist },
            }),
            ..FaultPlan::default()
        };
        let faulted = run_random_graph_point(
            &cfg,
            &ExperimentOptions { faults: zero_plan, ..small_opts(seed) },
        );
        prop_assert_eq!(
            serde_json::to_string(&baseline).unwrap(),
            serde_json::to_string(&faulted).unwrap()
        );
    }
}

#[test]
fn faulted_point_is_bit_identical_across_thread_counts() {
    let cfg = small_cfg();
    let base = ExperimentOptions {
        faults: faulty_plan(),
        ..small_opts(0xFA17)
    };
    let reference = run_random_graph_point(
        &cfg,
        &ExperimentOptions {
            threads: 1,
            ..base.clone()
        },
    );
    assert!(
        reference.sim_counters.fault_contacts_dropped > 0,
        "plan must actually bite for the test to mean anything"
    );
    for threads in [2, 8] {
        let got = run_random_graph_point(
            &cfg,
            &ExperimentOptions {
                threads,
                ..base.clone()
            },
        );
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&got).unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn faulted_security_sweep_is_thread_count_invariant() {
    let cfg = small_cfg();
    let base = ExperimentOptions {
        faults: faulty_plan(),
        ..small_opts(0x5EC5)
    };
    let cs = [2usize, 8];
    let spec = SweepSpec::random_graph(cfg.clone()).over_security(&cs, 2);
    let reference = spec
        .run(&ExperimentOptions {
            threads: 1,
            ..base.clone()
        })
        .into_security()
        .expect("security rows");
    let wide = spec
        .run(&ExperimentOptions {
            threads: 8,
            ..base.clone()
        })
        .into_security()
        .expect("security rows");
    assert_eq!(
        serde_json::to_string(&reference).unwrap(),
        serde_json::to_string(&wide).unwrap()
    );
}

/// A scratch dir cleaned up on drop, so failed tests don't pile up junk.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "onion-dtn-fault-determinism-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn interrupted_fault_sweep_resumes_byte_identically() {
    let scratch = Scratch::new("resume");
    let cfg = small_cfg();
    let opts = small_opts(0xC0DE);
    let plan = faulty_plan();
    let intensities = [0.0, 0.5, 1.0];

    // Uninterrupted reference, no checkpoint involved.
    let spec = SweepSpec::random_graph(cfg.clone()).over_faults(plan, &intensities);
    let reference = spec
        .run_with_checkpoint(&opts, None)
        .unwrap()
        .into_fault()
        .expect("fault rows");
    let reference_json = serde_json::to_string(&reference).unwrap();

    // "Killed" run: only the first two points finish before the crash,
    // and the kill tears the final line of the checkpoint mid-write.
    let path = scratch.path("sweep.jsonl");
    let fingerprint = Checkpoint::fingerprint(&("resume-test", &cfg));
    {
        let mut cp = Checkpoint::open(&path, &fingerprint).unwrap();
        SweepSpec::random_graph(cfg.clone())
            .over_faults(plan, &intensities[..2])
            .run_with_checkpoint(&opts, Some(&mut cp))
            .unwrap();
    }
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - 7]).unwrap(); // torn tail

    // Resume: the surviving complete point replays from the file; the
    // torn one and the never-started one are recomputed.
    let mut cp = Checkpoint::open(&path, &fingerprint).unwrap();
    assert_eq!(cp.len(), 1, "torn final entry must have been discarded");
    let resumed = spec
        .run_with_checkpoint(&opts, Some(&mut cp))
        .unwrap()
        .into_fault()
        .expect("fault rows");
    assert_eq!(cp.resumed_points(), 1);
    assert_eq!(serde_json::to_string(&resumed).unwrap(), reference_json);

    // A second full resume replays every point without recomputing.
    let mut cp = Checkpoint::open(&path, &fingerprint).unwrap();
    let replayed = spec
        .run_with_checkpoint(&opts, Some(&mut cp))
        .unwrap()
        .into_fault()
        .expect("fault rows");
    assert_eq!(cp.resumed_points(), intensities.len() as u64);
    assert_eq!(serde_json::to_string(&replayed).unwrap(), reference_json);
}

#[test]
fn panicking_trial_is_quarantined_without_aborting() {
    let mut folded: Vec<usize> = Vec::new();
    let failures = run_trials_resilient(
        &RunnerConfig::new(4),
        8,
        |trial, _attempt| {
            assert!(trial != 5, "trial 5 always panics");
            trial
        },
        &mut folded,
        |acc, _trial, value| acc.push(value),
    );
    assert_eq!(folded, vec![0, 1, 2, 3, 4, 6, 7]);
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].trial, 5);
    assert_eq!(failures[0].attempts, 2);
    assert!(failures[0].message.contains("trial 5 always panics"));
}

#[test]
fn retry_seed_is_deterministic_and_disambiguated() {
    let base = 0xFEED;
    for trial in 0..4u64 {
        let plain = trial_seed(base, SeedDomain::Faults, trial);
        assert_eq!(
            plain,
            trial_seed_attempt(base, SeedDomain::Faults, trial, 0),
            "attempt 0 must be the plain trial seed"
        );
        assert_ne!(
            plain,
            trial_seed_attempt(base, SeedDomain::Faults, trial, 1),
            "the retry must see a different stream"
        );
        assert_eq!(
            trial_seed_attempt(base, SeedDomain::Faults, trial, 1),
            trial_seed_attempt(base, SeedDomain::Faults, trial, 1),
            "...but a deterministic one"
        );
    }
}

#[test]
fn faults_degrade_delivery_but_raise_anonymity() {
    // A tight deadline so the fault-free rate is below saturation and
    // contact loss has something to take away.
    let cfg = ProtocolConfig {
        deadline: TimeDelta::new(90.0),
        ..small_cfg()
    };
    let opts = ExperimentOptions {
        messages: 10,
        realizations: 6,
        seed: 0xD06_F00D,
        threads: 0,
        ..Default::default()
    };
    let heavy = FaultPlan {
        contact_failure: 0.8,
        ..FaultPlan::default()
    };
    let rows = SweepSpec::random_graph(cfg.clone())
        .over_faults(heavy, &[0.0, 1.0])
        .run_with_checkpoint(&opts, None)
        .unwrap()
        .into_fault()
        .expect("fault rows");
    let (clean, faulted) = (&rows[0].summary, &rows[1].summary);
    assert!(
        faulted.sim_delivery < clean.sim_delivery,
        "losing 60% of contacts must hurt delivery ({} vs {})",
        faulted.sim_delivery,
        clean.sim_delivery
    );
    assert!(faulted.sim_counters.fault_contacts_dropped > 0);
    // Path anonymity under faults must not degrade: fewer completed
    // custody transfers expose fewer relays to the adversary (see
    // DESIGN.md). Allow a small tolerance for sampling noise.
    if let (Some(a0), Some(a1)) = (clean.sim_anonymity, faulted.sim_anonymity) {
        assert!(
            a1 >= a0 - 0.05,
            "anonymity should not fall under faults ({a1} vs {a0})"
        );
    }
}
