//! Golden bit-equality suite for the sweep API.
//!
//! Two layers of protection:
//!
//! 1. A **committed golden `PointSummary`** (`tests/golden/point_fig04_small.json`),
//!    generated from the pre-optimization engine. Every hot-path change must
//!    reproduce it byte-for-byte at threads 1, 2, and 8 — this is what lets
//!    the perf work in `dtn_sim::engine` / `contact_graph::schedule` claim
//!    "no result bit changed". Regenerate (only when a change is *meant* to
//!    alter results, which requires sign-off in DESIGN.md) with:
//!    `UPDATE_GOLDEN=1 cargo test --test sweep_api_equivalence`
//!
//! 2. **Legacy-vs-`SweepSpec` equivalence**: each deprecated free function in
//!    `onion_routing::experiment` must produce rows that serialize to the
//!    exact same bytes as the `SweepSpec` path, at threads 1 and 2.

#![allow(deprecated)] // the legacy functions are the compatibility surface under test

use contact_graph::{ContactSchedule, Time, TimeDelta, UniformGraphBuilder};
use dtn_sim::FaultPlan;
use onion_routing::{
    delivery_sweep_random_graph, delivery_sweep_schedule, delivery_sweep_schedule_with_rates,
    fault_sweep_random_graph, run_random_graph_point, security_sweep_random_graph,
    security_sweep_schedule, ExperimentOptions, ProtocolConfig, SweepSpec,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const GOLDEN_POINT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/point_fig04_small.json"
);

/// Small fig04-flavored configuration: Table II defaults shrunk so the
/// golden run stays fast in debug test builds while still exercising the
/// full pipeline (graph → schedule → onion sim → Eq. 4–7 scoring).
fn golden_cfg() -> ProtocolConfig {
    ProtocolConfig {
        nodes: 40,
        group_size: 5,
        onions: 2,
        compromised: 4,
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    }
}

fn golden_opts(threads: usize) -> ExperimentOptions {
    ExperimentOptions {
        messages: 5,
        realizations: 10,
        seed: 0xF1_604,
        threads,
        ..Default::default()
    }
}

#[test]
fn point_summary_matches_committed_golden_at_threads_1_2_8() {
    let computed = serde_json::to_string(&run_random_graph_point(&golden_cfg(), &golden_opts(1)))
        .expect("PointSummary serializes");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_POINT, format!("{computed}\n")).expect("write golden fixture");
        eprintln!("updated {GOLDEN_POINT}");
    }

    let golden = std::fs::read_to_string(GOLDEN_POINT)
        .expect("golden fixture missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        computed,
        golden.trim_end(),
        "PointSummary at threads=1 drifted from the committed pre-optimization golden"
    );

    for threads in [2usize, 8] {
        let parallel = serde_json::to_string(&run_random_graph_point(
            &golden_cfg(),
            &golden_opts(threads),
        ))
        .expect("PointSummary serializes");
        assert_eq!(
            parallel,
            golden.trim_end(),
            "PointSummary at threads={threads} drifted from the committed golden"
        );
    }
}

/// A fixed schedule + config pair for the schedule-flavored comparisons,
/// sized down so six sweeps stay fast in debug builds.
fn schedule_fixture() -> (ContactSchedule, ProtocolConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5C4E_D01E);
    let graph = UniformGraphBuilder::new(30).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(900.0), &mut rng);
    let cfg = ProtocolConfig {
        nodes: 30,
        group_size: 3,
        onions: 2,
        compromised: 3,
        deadline: TimeDelta::new(720.0),
        ..ProtocolConfig::table2_defaults()
    };
    (schedule, cfg)
}

fn json<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string(rows).expect("rows serialize")
}

#[test]
fn legacy_delivery_random_graph_matches_sweep_spec() {
    let cfg = golden_cfg();
    let deadlines = [180.0, 1080.0];
    for threads in [1usize, 2] {
        let opts = golden_opts(threads);
        let legacy = delivery_sweep_random_graph(&cfg, &deadlines, &opts);
        let unified = SweepSpec::random_graph(cfg.clone())
            .over_deadlines(&deadlines)
            .run(&opts)
            .into_delivery()
            .expect("delivery rows");
        assert_eq!(json(&legacy), json(&unified), "threads={threads}");
    }
}

#[test]
fn legacy_delivery_schedule_matches_sweep_spec() {
    let (schedule, cfg) = schedule_fixture();
    let deadlines = [120.0, 720.0];
    for threads in [1usize, 2] {
        let opts = golden_opts(threads);
        let legacy = delivery_sweep_schedule(&schedule, &cfg, &deadlines, &opts);
        let unified = SweepSpec::schedule(cfg.clone(), schedule.clone())
            .over_deadlines(&deadlines)
            .run(&opts)
            .into_delivery()
            .expect("delivery rows");
        assert_eq!(json(&legacy), json(&unified), "threads={threads}");
    }
}

#[test]
fn legacy_delivery_schedule_with_rates_matches_sweep_spec() {
    let (schedule, cfg) = schedule_fixture();
    // Any rate graph works for equivalence; use the schedule's own estimate
    // passed explicitly so the "trained rates" path is what's exercised.
    let trained = schedule.estimate_rates();
    let deadlines = [120.0, 720.0];
    for threads in [1usize, 2] {
        let opts = golden_opts(threads);
        let legacy =
            delivery_sweep_schedule_with_rates(&schedule, &trained, &cfg, &deadlines, &opts);
        let unified = SweepSpec::trace(cfg.clone(), schedule.clone(), trained.clone())
            .over_deadlines(&deadlines)
            .run(&opts)
            .into_delivery()
            .expect("delivery rows");
        assert_eq!(json(&legacy), json(&unified), "threads={threads}");
    }
}

#[test]
fn legacy_security_random_graph_matches_sweep_spec() {
    let cfg = golden_cfg();
    let cs = [2usize, 8];
    for threads in [1usize, 2] {
        let opts = golden_opts(threads);
        let legacy = security_sweep_random_graph(&cfg, &cs, 3, &opts);
        let unified = SweepSpec::random_graph(cfg.clone())
            .over_security(&cs, 3)
            .run(&opts)
            .into_security()
            .expect("security rows");
        assert_eq!(json(&legacy), json(&unified), "threads={threads}");
    }
}

#[test]
fn legacy_security_schedule_matches_sweep_spec() {
    let (schedule, cfg) = schedule_fixture();
    let cs = [2usize, 6];
    for threads in [1usize, 2] {
        let opts = golden_opts(threads);
        let legacy = security_sweep_schedule(&schedule, &cfg, &cs, 3, &opts);
        let unified = SweepSpec::schedule(cfg.clone(), schedule.clone())
            .over_security(&cs, 3)
            .run(&opts)
            .into_security()
            .expect("security rows");
        assert_eq!(json(&legacy), json(&unified), "threads={threads}");
    }
}

#[test]
fn legacy_fault_random_graph_matches_sweep_spec() {
    let cfg = golden_cfg();
    let plan = FaultPlan {
        contact_failure: 0.3,
        message_loss: 0.05,
        ..FaultPlan::default()
    };
    let intensities = [0.0, 1.0];
    for threads in [1usize, 2] {
        let opts = golden_opts(threads);
        let legacy = fault_sweep_random_graph(&cfg, &plan, &intensities, &opts, None)
            .expect("no checkpoint, no error");
        let unified = SweepSpec::random_graph(cfg.clone())
            .over_faults(plan, &intensities)
            .run_with_checkpoint(&opts, None)
            .expect("no checkpoint, no error")
            .into_fault()
            .expect("fault rows");
        assert_eq!(json(&legacy), json(&unified), "threads={threads}");
    }
}
