//! Property-based tests of the analytical models: bounds, monotonicity,
//! and cross-model consistency under arbitrary valid parameters.

use onion_dtn::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hypoexp_cdf_in_unit_interval_and_monotone(
        rates in proptest::collection::vec(0.001f64..10.0, 1..10),
        t in 0.0f64..2000.0,
    ) {
        let h = HypoExp::new(rates).unwrap();
        let c = h.cdf(t);
        prop_assert!((0.0..=1.0).contains(&c));
        // Monotone in t.
        let c2 = h.cdf(t + 1.0);
        prop_assert!(c2 >= c - 1e-9, "CDF({}) = {c} > CDF({}) = {c2}", t, t + 1.0);
    }

    #[test]
    fn hypoexp_extra_stage_never_helps(
        rates in proptest::collection::vec(0.01f64..5.0, 1..8),
        extra in 0.01f64..5.0,
        t in 0.1f64..500.0,
    ) {
        let shorter = HypoExp::new(rates.clone()).unwrap().cdf(t);
        let mut longer_rates = rates;
        longer_rates.push(extra);
        let longer = HypoExp::new(longer_rates).unwrap().cdf(t);
        prop_assert!(longer <= shorter + 1e-6, "adding a stage increased the CDF");
    }

    #[test]
    fn delivery_multicopy_dominates_single(
        g in 1usize..10,
        k in 1usize..8,
        lambda in 0.001f64..1.0,
        l in 2u32..6,
        t in 1.0f64..1000.0,
    ) {
        let rates = uniform_onion_path_rates(lambda, g, k).unwrap();
        let single = delivery_rate(&rates, t).unwrap();
        let multi = delivery_rate_multicopy(&rates, l, t).unwrap();
        prop_assert!(multi >= single - 1e-9);
        prop_assert!((0.0..=1.0).contains(&multi));
    }

    #[test]
    fn traceable_rate_bounds_and_monotonicity(
        eta in 1usize..12,
        p_scaled in 0u32..=100,
    ) {
        let p = p_scaled as f64 / 100.0;
        let v = expected_traceable_rate(eta, p).unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
        if p < 1.0 {
            let v2 = expected_traceable_rate(eta, (p + 0.01).min(1.0)).unwrap();
            prop_assert!(v2 >= v - 1e-12);
        }
    }

    #[test]
    fn traceable_bits_vs_expectation_consistency(
        bits in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let v = analysis::traceable_rate_of_bits(&bits);
        prop_assert!((0.0..=1.0).contains(&v));
        // All-ones is the maximum; all-zeros the minimum.
        let eta = bits.len();
        prop_assert!(v <= analysis::traceable_rate_of_bits(&vec![true; eta]));
        prop_assert!(v >= analysis::traceable_rate_of_bits(&vec![false; eta]));
    }

    #[test]
    fn anonymity_bounds_and_monotonicity(
        n in 10usize..500,
        g in 1usize..10,
        k in 1usize..8,
        c_frac in 0u32..=100,
        l in 1u32..6,
    ) {
        prop_assume!(k < n);
        let c = (n * c_frac as usize) / 100;
        let d = path_anonymity(n, g, k, c, l).unwrap();
        prop_assert!((0.0..=1.0).contains(&d));
        // More compromise never increases anonymity.
        if c < n {
            let d2 = path_anonymity(n, g, k, c + 1, l).unwrap();
            prop_assert!(d2 <= d + 1e-12);
        }
        // More copies never increase anonymity.
        let d_more_copies = path_anonymity(n, g, k, c, l + 1).unwrap();
        prop_assert!(d_more_copies <= d + 1e-12);
    }

    #[test]
    fn anonymity_exact_and_stirling_share_ordering(
        g_small in 1usize..5,
        g_big in 5usize..11,
        c_o in 0u32..5,
    ) {
        // Bigger groups are never worse, in both formulations.
        let eta = 4;
        let c_o = c_o as f64;
        let s_small = analysis::path_anonymity_stirling(100, g_small, eta, c_o).unwrap();
        let s_big = analysis::path_anonymity_stirling(100, g_big, eta, c_o).unwrap();
        prop_assert!(s_big >= s_small - 1e-12);
        let e_small = analysis::path_anonymity_exact(100, g_small, eta, c_o).unwrap();
        let e_big = analysis::path_anonymity_exact(100, g_big, eta, c_o).unwrap();
        prop_assert!(e_big >= e_small - 1e-12);
    }

    #[test]
    fn cost_bounds_are_ordered(k in 0usize..12, l in 1u32..8) {
        let single = analysis::single_copy_cost(k);
        let multi = analysis::multi_copy_bound(k, l).unwrap();
        prop_assert!(multi >= single);
        prop_assert!(multi >= analysis::non_anonymous_bound(l) || k == 0);
        // The bound decomposition is internally consistent.
        let parts = analysis::multi_copy_first_hop_bound(l) + (k as u64) * l as u64;
        prop_assert!(parts <= multi);
    }

    #[test]
    fn eq4_rates_from_graph_are_bounded_by_group_sums(
        seed in any::<u64>(),
        g in 1usize..6,
        k in 1usize..4,
    ) {
        use rand::SeedableRng;
        let n = 30;
        prop_assume!(k < n / g);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let graph = UniformGraphBuilder::new(n).build(&mut rng);
        let groups = OnionGroups::random_partition(n, g, &mut rng);
        let route = groups.select_route(k, &mut rng).unwrap();
        let members = groups.route_members(&route);
        let rates = analysis::onion_path_rates(&graph, NodeId(0), &members, NodeId(1)).unwrap();
        prop_assert_eq!(rates.len(), k + 1);
        // Each aggregate rate is at most g × the max pairwise rate (1.0).
        for &r in &rates {
            prop_assert!(r >= 0.0 && r <= g as f64 * 1.0 + 1e-9);
        }
    }
}
