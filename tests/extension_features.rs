//! Integration coverage for the extensions beyond the paper's minimum
//! (DESIGN.md §4b): epoch rekeying, constant-size onions, TPS, PRoPHET,
//! finite buffers, mobility, and the ONE trace format — exercised
//! together rather than module-by-module.

use onion_dtn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn epoch_rekeying_invalidates_old_onions() {
    // An onion built under epoch 0 keys must not peel with epoch 1 keys:
    // captured devices cannot decrypt future traffic and vice versa.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let chain0 = EpochKeychain::new([7u8; 32]);
    let mut chain1 = chain0.clone();
    chain1.advance();

    let spec = |chain: &EpochKeychain| onion_crypto::OnionLayerSpec {
        group: 4,
        key: chain.group_key(4),
    };
    let onion = OnionBuilder::new(9, b"epoch bound".to_vec())
        .layer(spec(&chain0))
        .build(&mut rng)
        .unwrap();
    // Correct epoch peels; next epoch fails.
    assert!(onion.peel(&chain0.group_key(4)).is_ok());
    assert!(onion.peel(&chain1.group_key(4)).is_err());
}

#[test]
fn constant_size_onion_over_simulated_path() {
    // Run the abstract protocol, then replay the winning chain with the
    // constant-size packet format and confirm no hop can tell its depth
    // from the wire size.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graph = UniformGraphBuilder::new(40).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(300.0), &mut rng);
    let groups = OnionGroups::random_partition(40, 4, &mut rng);
    let mut protocol = OnionRouting::new(groups.clone(), 3, ForwardingMode::SingleCopy);
    let messages = WorkloadBuilder::new(10, TimeDelta::new(300.0)).build(40, &mut rng);
    let report = run(
        &schedule,
        &mut protocol,
        messages,
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();

    let ctx = OnionCryptoContext::new([3u8; 32], groups);
    let mut verified = 0;
    for &id in report.injected() {
        let Some(chain) = report.delivered_path(id) else {
            continue;
        };
        let route = protocol.route_of(id).unwrap();
        let onion = ctx
            .build_fixed_onion(route, *chain.last().unwrap(), b"fixed", &mut rng)
            .unwrap();
        let payload = ctx
            .walk_custody_chain_fixed(onion, &chain, &mut rng)
            .expect("fixed-size walk");
        assert_eq!(payload, b"fixed");
        verified += 1;
    }
    assert!(verified >= 5, "only {verified} chains verified");
}

#[test]
fn tps_trades_exposure_for_delay() {
    use onion_routing::{run_tps_message, TpsConfig};
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graph = UniformGraphBuilder::new(50).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(400.0), &mut rng);
    let groups = OnionGroups::random_partition(50, 5, &mut rng);

    let mut tps_delivered = 0;
    let trials = 10;
    for i in 0..trials {
        let outcome = run_tps_message(
            &schedule,
            &groups,
            &TpsConfig {
                shares: 4,
                threshold: 2,
            },
            NodeId(i),
            NodeId(49 - i),
            Time::ZERO,
            TimeDelta::new(400.0),
            &mut rng,
        );
        if outcome.delivered_at.is_some() {
            tps_delivered += 1;
        }
        assert!(
            outcome.transmissions
                <= onion_routing::tps_cost_bound(&TpsConfig {
                    shares: 4,
                    threshold: 2
                })
        );
    }
    assert!(
        tps_delivered >= 8,
        "TPS delivered only {tps_delivered}/{trials}"
    );
    // The structural exposure trade-off.
    assert!(onion_routing::destination_exposure(50, 5) > 0.05);
}

#[test]
fn prophet_beats_direct_on_community_structure() {
    use dtn_sim::baselines::DirectDelivery;
    use dtn_sim::prophet::Prophet;
    // Community graph: history helps find cross-community couriers.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let graph = contact_graph::community_graph(
        5,
        8,
        TimeDelta::new(2.0),
        TimeDelta::new(120.0),
        0.15,
        &mut rng,
    );
    let schedule = ContactSchedule::sample(&graph, Time::new(240.0), &mut rng);
    let messages = WorkloadBuilder::new(30, TimeDelta::new(240.0)).build(40, &mut rng);

    let mut r1 = ChaCha8Rng::seed_from_u64(5);
    let prophet = run(
        &schedule,
        &mut Prophet::new(40),
        messages.clone(),
        &SimConfig::default(),
        &mut r1,
    )
    .unwrap();
    let mut r2 = ChaCha8Rng::seed_from_u64(5);
    let direct = run(
        &schedule,
        &mut DirectDelivery,
        messages,
        &SimConfig::default(),
        &mut r2,
    )
    .unwrap();
    assert!(
        prophet.delivery_rate() >= direct.delivery_rate(),
        "prophet {} < direct {}",
        prophet.delivery_rate(),
        direct.delivery_rate()
    );
}

#[test]
fn finite_buffers_hurt_epidemic_more_than_onion() {
    use dtn_sim::baselines::Epidemic;
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let graph = UniformGraphBuilder::new(50).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(200.0), &mut rng);
    let messages = WorkloadBuilder::new(30, TimeDelta::new(200.0)).build(50, &mut rng);

    let tight = SimConfig {
        buffer_capacity: Some(2),
        drop_policy: DropPolicy::DropOldest,
        ..SimConfig::default()
    };
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let epi = run(&schedule, &mut Epidemic, messages.clone(), &tight, &mut r).unwrap();
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let groups = OnionGroups::random_partition(50, 5, &mut r);
    let mut onion = OnionRouting::new(groups, 3, ForwardingMode::SingleCopy);
    let oni = run(&schedule, &mut onion, messages, &tight, &mut r).unwrap();

    // Epidemic thrashes the tiny buffers; single-custody onion barely
    // notices.
    assert!(epi.buffer_drops() > 10 * oni.buffer_drops().max(1));
}

#[test]
fn one_format_feeds_the_same_pipeline() {
    // Generate a mobility schedule, export it as a ONE event log, parse
    // it back, and confirm the round trip preserves the contacts.
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let schedule = waypoint_schedule(
        8,
        Time::new(2000.0),
        &WaypointConfig {
            arena: 300.0,
            range: 40.0,
            ..WaypointConfig::default()
        },
        &mut rng,
    );
    assert!(schedule.len() > 20);

    let mut log = String::new();
    for e in schedule.iter() {
        log.push_str(&format!(
            "{} CONN n{} n{} up\n",
            e.time.as_f64(),
            e.a.0,
            e.b.0
        ));
    }
    let parsed = traces::parse_one_str(&log).unwrap();
    assert_eq!(parsed.schedule.len(), schedule.len());
    assert_eq!(parsed.schedule.node_count(), 8);
}

#[test]
fn report_percentiles_match_deadline_curve() {
    // delivery_rate_within at the q-quantile delay must be >= q fraction
    // of *delivered* messages... check internal consistency on a real run.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let graph = UniformGraphBuilder::new(30).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(300.0), &mut rng);
    let groups = OnionGroups::random_partition(30, 3, &mut rng);
    let mut protocol = OnionRouting::new(groups, 2, ForwardingMode::SingleCopy);
    let messages = WorkloadBuilder::new(25, TimeDelta::new(300.0)).build(30, &mut rng);
    let report = run(
        &schedule,
        &mut protocol,
        messages,
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    let delivered_fraction = report.delivery_rate();
    if let Some(median) = report.median_delay() {
        let at_median = report.delivery_rate_within(median);
        assert!(at_median >= 0.5 * delivered_fraction - 1e-9);
        assert!(at_median <= delivered_fraction + 1e-9);
    }
}
