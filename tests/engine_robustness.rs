//! Failure injection: the engine must stay consistent when the routing
//! protocol misbehaves (references phantom messages, over-spends tickets,
//! duplicates transfers, or floods decisions).

use onion_dtn::prelude::*;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dtn_sim::{ContactView, Forward, ForwardKind};

fn schedule(seed: u64, n: usize, horizon: f64) -> ContactSchedule {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = UniformGraphBuilder::new(n).build(&mut rng);
    ContactSchedule::sample(&graph, Time::new(horizon), &mut rng)
}

fn messages(n: u32, count: u64, copies: u32, horizon: f64) -> Vec<Message> {
    (0..count)
        .map(|i| Message {
            id: MessageId(i),
            source: NodeId(i as u32 % (n / 2)),
            destination: NodeId(n / 2 + i as u32 % (n / 2)),
            created: Time::ZERO,
            deadline: TimeDelta::new(horizon),
            copies,
        })
        .collect()
}

/// References messages the carrier does not hold.
struct PhantomForwarder;
impl RoutingProtocol for PhantomForwarder {
    fn name(&self) -> &str {
        "phantom"
    }
    fn on_contact(&mut self, _view: &dyn ContactView, _rng: &mut dyn RngCore) -> Vec<Forward> {
        (1000..1010)
            .map(|i| Forward {
                message: MessageId(i),
                kind: ForwardKind::Handoff,
                receiver_tag: 0,
            })
            .collect()
    }
}

#[test]
fn phantom_messages_are_rejected_not_fatal() {
    let s = schedule(1, 20, 100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let report = dtn_sim::run(
        &s,
        &mut PhantomForwarder,
        messages(20, 5, 1, 100.0),
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert_eq!(report.total_transmissions(), 0);
    assert!(report.rejected_forwards() > 0);
    assert_eq!(report.delivery_rate(), 0.0);
}

/// Tries to give away more tickets than it has, and zero tickets.
struct TicketCheater;
impl RoutingProtocol for TicketCheater {
    fn name(&self) -> &str {
        "ticket-cheater"
    }
    fn on_contact(&mut self, view: &dyn ContactView, _rng: &mut dyn RngCore) -> Vec<Forward> {
        view.carried()
            .iter()
            .copied()
            .flat_map(|(id, copy)| {
                [
                    Forward {
                        message: id,
                        kind: ForwardKind::Split {
                            tickets_to_receiver: copy.tickets + 100,
                        },
                        receiver_tag: 0,
                    },
                    Forward {
                        message: id,
                        kind: ForwardKind::Split {
                            tickets_to_receiver: 0,
                        },
                        receiver_tag: 0,
                    },
                ]
            })
            .collect()
    }
}

#[test]
fn ticket_overdraft_is_rejected() {
    let s = schedule(3, 20, 100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let report = dtn_sim::run(
        &s,
        &mut TicketCheater,
        messages(20, 5, 3, 100.0),
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    // Every proposed transfer is invalid: nothing moves.
    assert_eq!(report.total_transmissions(), 0);
    assert!(report.rejected_forwards() > 0);
}

/// Proposes the same transfer many times per contact.
struct Duplicator;
impl RoutingProtocol for Duplicator {
    fn name(&self) -> &str {
        "duplicator"
    }
    fn on_contact(&mut self, view: &dyn ContactView, _rng: &mut dyn RngCore) -> Vec<Forward> {
        view.carried()
            .iter()
            .copied()
            .flat_map(|(id, _)| {
                std::iter::repeat_n(
                    Forward {
                        message: id,
                        kind: ForwardKind::Replicate,
                        receiver_tag: 0,
                    },
                    5,
                )
            })
            .collect()
    }
}

#[test]
fn duplicate_decisions_transfer_once() {
    let s = schedule(5, 10, 50.0);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let report = dtn_sim::run(
        &s,
        &mut Duplicator,
        messages(10, 3, 1, 50.0),
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    // Transfers happened, but each (message, receiver) at most once: the
    // forwarding log must have no duplicates.
    let mut seen = std::collections::HashSet::new();
    for rec in report.forward_log() {
        assert!(
            seen.insert((rec.message, rec.to)),
            "duplicate transfer of {:?} to {:?}",
            rec.message,
            rec.to
        );
    }
    assert!(
        report.rejected_forwards() > 0,
        "duplicates must be rejected"
    );
}

/// Hands the message back and forth (tries to create a custody loop).
struct PingPonger;
impl RoutingProtocol for PingPonger {
    fn name(&self) -> &str {
        "ping-pong"
    }
    fn on_contact(&mut self, view: &dyn ContactView, _rng: &mut dyn RngCore) -> Vec<Forward> {
        view.carried()
            .iter()
            .copied()
            .map(|(id, _)| Forward {
                message: id,
                kind: ForwardKind::Handoff,
                receiver_tag: 0,
            })
            .collect()
    }
}

#[test]
fn seen_filter_bounds_pingpong_transmissions() {
    let s = schedule(7, 10, 200.0);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let report = dtn_sim::run(
        &s,
        &mut PingPonger,
        messages(10, 2, 1, 200.0),
        &SimConfig::default(),
        &mut rng,
    )
    .unwrap();
    // With reject_seen, a single copy can visit each node at most once:
    // at most n - 1 transmissions per message.
    for &id in report.injected() {
        assert!(
            report.transmissions_for(id) <= 9,
            "{id}: {} transmissions",
            report.transmissions_for(id)
        );
    }
}
