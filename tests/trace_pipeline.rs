//! Trace-substrate integration: Haggle parsing → schedule → simulation →
//! metrics, and the structural properties of the synthetic traces that the
//! paper's trace figures depend on.

use onion_dtn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use traces::{estimate_active_rates, trace_stats};

#[test]
fn haggle_parse_to_simulation_pipeline() {
    // A miniature Haggle-format trace: 4 iMotes, contacts in seconds.
    let mut text = String::from("# miniature trace\n");
    // Dense repeated contacts 0-1, 1-2, 2-3 so a 2-onion route can finish.
    for round in 0..200 {
        let base = round * 60;
        text.push_str(&format!("10 20 {} {}\n", base + 1, base + 5));
        text.push_str(&format!("20 30 {} {}\n", base + 10, base + 15));
        text.push_str(&format!("30 40 {} {}\n", base + 20, base + 25));
        text.push_str(&format!("10 30 {} {}\n", base + 30, base + 35));
        text.push_str(&format!("20 40 {} {}\n", base + 40, base + 45));
    }
    let parsed = HaggleParser::new().parse_str(&text).expect("valid trace");
    assert_eq!(parsed.schedule.node_count(), 4);
    assert_eq!(parsed.schedule.len(), 1000);

    // Route a message over it with onion groups of 1.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let groups = OnionGroups::random_partition(4, 1, &mut rng);
    let mut protocol = OnionRouting::new(groups, 2, ForwardingMode::SingleCopy);
    let src = parsed.node_of_device(10).expect("device 10 exists");
    let dst = parsed.node_of_device(40).expect("device 40 exists");
    let message = Message {
        id: MessageId(1),
        source: src,
        destination: dst,
        created: Time::ZERO,
        deadline: TimeDelta::new(parsed.schedule.horizon().as_f64()),
        copies: 1,
    };
    let report = run(
        &parsed.schedule,
        &mut protocol,
        vec![message],
        &SimConfig::default(),
        &mut rng,
    )
    .expect("valid message");
    // With 200 rounds of the full contact pattern the route completes.
    assert_eq!(report.delivery_rate(), 1.0);
    let path = report.delivered_path(MessageId(1)).expect("delivered");
    assert_eq!(path.len(), 4); // src, 2 relays, dst
}

#[test]
fn cambridge_like_trace_has_the_figure_14_shape() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let trace = SyntheticTraceBuilder::cambridge_like().build(&mut rng);
    let stats = trace_stats(&trace);
    assert_eq!(stats.nodes, 12);
    assert!(
        stats.density > 0.95,
        "Cambridge is dense: {}",
        stats.density
    );

    // All contacts inside business hours.
    let pattern = ActivityPattern::business_hours();
    assert!(trace.iter().all(|e| pattern.is_active(e.time.as_f64())));

    // Active-rate training recovers rates usable by the delivery model.
    let trained = estimate_active_rates(&trace, &pattern);
    assert!(trained.is_connected());
}

#[test]
fn infocom_like_trace_has_the_figure_17_plateau() {
    let mut rng = ChaCha8Rng::seed_from_u64(78);
    let trace = SyntheticTraceBuilder::infocom05_like().build(&mut rng);
    assert_eq!(trace.node_count(), 41);

    // Overnight gap: no contact between 18:00 and 08:30 next day.
    let night = trace.window(Time::new(18.0 * 3600.0), Time::new(86_400.0 + 8.5 * 3600.0));
    assert!(night.is_empty(), "found {} overnight contacts", night.len());

    // The plateau property that shapes Fig. 17: a message created at
    // 17:00 (one hour before the last session ends) makes *no further
    // progress* once the overnight gap starts, so any deadline ending
    // inside the gap yields the identical delivery outcome.
    let created = Time::new(17.0 * 3600.0);
    let make_messages = |deadline: f64| -> Vec<Message> {
        (0..30u64)
            .map(|i| Message {
                id: MessageId(i),
                source: NodeId((i % 41) as u32),
                destination: NodeId(((i + 7) % 41) as u32),
                created,
                deadline: TimeDelta::new(deadline),
                copies: 1,
            })
            .collect()
    };
    let run_with_deadline = |deadline: f64| -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x17_F0C0);
        let groups = OnionGroups::random_partition(41, 5, &mut rng);
        let mut protocol = OnionRouting::new(groups, 3, ForwardingMode::SingleCopy);
        run(
            &trace,
            &mut protocol,
            make_messages(deadline),
            &SimConfig::default(),
            &mut rng,
        )
        .expect("valid messages")
        .delivery_rate()
    };
    // Deadline ending 20:00 day 0 (inside the gap) vs 08:00 day 1 (still
    // inside the gap): identical. Ending 12:00 day 1 (after sessions
    // resume): at least as high.
    let in_gap_early = run_with_deadline(3.0 * 3600.0);
    let in_gap_late = run_with_deadline(15.0 * 3600.0);
    let after_gap = run_with_deadline(19.0 * 3600.0);
    assert_eq!(
        in_gap_early, in_gap_late,
        "no progress can occur during the overnight gap"
    );
    assert!(after_gap >= in_gap_late, "progress resumes on day 2");
}

#[test]
fn trace_experiment_end_to_end_metrics() {
    let mut rng = ChaCha8Rng::seed_from_u64(79);
    let trace = SyntheticTraceBuilder::cambridge_like().build(&mut rng);
    let cfg = ProtocolConfig {
        nodes: 12,
        group_size: 1,
        onions: 3,
        copies: 1,
        compromised: 2,
        deadline: TimeDelta::new(3600.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 20,
        realizations: 3,
        seed: 0xCAFE,
        ..Default::default()
    };
    let point = run_schedule_point(&trace, &cfg, &opts);
    assert!(point.injected == 60);
    assert!(point.sim_delivery > 0.3, "delivery {}", point.sim_delivery);
    // Security metrics sane and within the model's ballpark.
    let sim_anon = point.sim_anonymity.expect("measured");
    assert!((point.analysis_anonymity - sim_anon).abs() < 0.1);
}
