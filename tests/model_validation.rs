//! The paper's headline claim as executable assertions: the analytical
//! models closely approximate (or share the trend of) the simulation.
//!
//! These are statistical tests over seeded experiments, with tolerances
//! set generously enough to be deterministic at the configured sample
//! sizes.

use contact_graph::TimeDelta;
use onion_routing::{
    run_random_graph_point, run_trials, trial_rng, ExperimentOptions, ProtocolConfig, RunnerConfig,
    SeedDomain, SweepSpec,
};
use rand::Rng;

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        messages: 25,
        realizations: 5,
        seed: 0x0A11_DA7A,
        intercontact_range: (1.0, 36.0),
        threads: 0,
        ..Default::default()
    }
}

#[test]
fn delivery_model_tracks_simulation_across_deadlines() {
    let cfg = ProtocolConfig::table2_defaults();
    let deadlines = [60.0, 120.0, 240.0, 480.0, 1080.0];
    let rows = SweepSpec::random_graph(cfg.clone())
        .over_deadlines(&deadlines)
        .run(&opts())
        .into_delivery()
        .expect("delivery rows");
    for row in &rows {
        assert!(
            (row.analysis - row.sim).abs() < 0.12,
            "T = {}: analysis {} vs sim {}",
            row.deadline,
            row.analysis,
            row.sim
        );
    }
    // Both saturate by the Table II maximum deadline.
    assert!(rows.last().unwrap().sim > 0.95);
    assert!(rows.last().unwrap().analysis > 0.95);
}

#[test]
fn delivery_model_tracks_simulation_across_group_sizes() {
    for g in [1usize, 5, 10] {
        let cfg = ProtocolConfig {
            group_size: g,
            deadline: TimeDelta::new(120.0),
            ..ProtocolConfig::table2_defaults()
        };
        let point = run_random_graph_point(&cfg, &opts());
        assert!(
            (point.analysis_delivery - point.sim_delivery).abs() < 0.12,
            "g = {g}: analysis {} vs sim {}",
            point.analysis_delivery,
            point.sim_delivery
        );
    }
}

#[test]
fn multicopy_delivery_model_tracks_simulation() {
    for l in [1u32, 3, 5] {
        let cfg = ProtocolConfig {
            copies: l,
            deadline: TimeDelta::new(120.0),
            ..ProtocolConfig::table2_defaults()
        };
        let point = run_random_graph_point(&cfg, &opts());
        // The paper observes a wider gap for multi-copy at short
        // deadlines (Fig. 10); the trend must still match.
        assert!(
            (point.analysis_delivery - point.sim_delivery).abs() < 0.2,
            "L = {l}: analysis {} vs sim {}",
            point.analysis_delivery,
            point.sim_delivery
        );
    }
}

#[test]
fn traceable_model_matches_simulation_closely() {
    let cfg = ProtocolConfig {
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    };
    let cs = [5usize, 10, 20, 30, 50];
    let rows = SweepSpec::random_graph(cfg.clone())
        .over_security(&cs, 4)
        .run(&opts())
        .into_security()
        .expect("security rows");
    for row in &rows {
        let sim = row.sim_traceable.expect("plenty of deliveries at T = 1080");
        assert!(
            (row.analysis_traceable - sim).abs() < 0.03,
            "c = {}: analysis {} vs sim {}",
            row.compromised,
            row.analysis_traceable,
            sim
        );
    }
}

#[test]
fn anonymity_model_matches_simulation_closely() {
    let cfg = ProtocolConfig {
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    };
    let cs = [5usize, 10, 20, 30];
    let rows = SweepSpec::random_graph(cfg.clone())
        .over_security(&cs, 4)
        .run(&opts())
        .into_security()
        .expect("security rows");
    for row in &rows {
        let sim = row.sim_anonymity.expect("anonymity always measurable");
        assert!(
            (row.analysis_anonymity - sim).abs() < 0.05,
            "c = {}: analysis {} vs sim {}",
            row.compromised,
            row.analysis_anonymity,
            sim
        );
    }
}

#[test]
fn multicopy_anonymity_gap_grows_with_compromise() {
    // Section V-C: the L = 5 model and simulation agree below ~30%
    // compromise and drift apart beyond (the c ≪ n assumption).
    let cfg = ProtocolConfig {
        copies: 5,
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    };
    let rows = SweepSpec::random_graph(cfg.clone())
        .over_security(&[10usize, 50], 4)
        .run(&opts())
        .into_security()
        .expect("security rows");
    let small_gap = (rows[0].analysis_anonymity - rows[0].sim_anonymity.unwrap()).abs();
    assert!(small_gap < 0.08, "gap at 10%: {small_gap}");
}

#[test]
fn cost_bounds_hold_in_simulation() {
    for l in [1u32, 2, 5] {
        let cfg = ProtocolConfig {
            copies: l,
            deadline: TimeDelta::new(1080.0),
            ..ProtocolConfig::table2_defaults()
        };
        let point = run_random_graph_point(&cfg, &opts());
        assert!(
            point.sim_transmissions <= point.analysis_cost_bound + 1e-9,
            "L = {l}: {} > {}",
            point.sim_transmissions,
            point.analysis_cost_bound
        );
        // Single-copy cost is *exactly* K + 1 for delivered messages, so
        // the mean is positive once anything is delivered.
        assert!(point.sim_transmissions > 0.0);
    }
}

/// Direct Monte-Carlo convergence to the delivery model (Eqs. 4–7): the
/// parallel runner samples the onion path's per-hop exponential delays
/// (with the Eq. 7 `L`-boosted rates) and the empirical delivery
/// frequency over ≥2k trials must match the hypoexponential CDF within
/// the binomial sampling tolerance. Exercises [`run_trials`] with a
/// multi-thread config on a workload that is pure model, no simulator.
#[test]
fn parallel_mc_delivery_converges_to_hypoexponential_model() {
    // Mean pairwise contact rate of the Table II graph: E[1/X], X ~ U(1, 36).
    let lambda = (36f64.ln() - 1f64.ln()) / 35.0;
    let trials = 4000usize;
    // 4·sqrt(p(1-p)/n) ≤ 4·0.5/sqrt(4000) ≈ 0.032 — deterministic at
    // these seeds with ample slack.
    let tolerance = 0.035;

    // Two (K, g, L) settings from the paper's sweeps: the single-copy
    // Table II default and a long multi-copy route.
    for (k, g, l, t) in [(3usize, 5usize, 1u32, 360.0), (5usize, 2usize, 3u32, 240.0)] {
        let rates = analysis::uniform_onion_path_rates(lambda, g, k).expect("valid parameters");
        let model = analysis::delivery_rate_multicopy(&rates, l, t).expect("valid parameters");

        let boosted: Vec<f64> = rates.iter().map(|&r| r * l as f64).collect();
        let mut hits = 0usize;
        run_trials(
            &RunnerConfig::new(4),
            trials,
            |trial| {
                let mut rng = trial_rng(0x0A11_DA7A, SeedDomain::ModelValidation, trial as u64);
                let total: f64 = boosted
                    .iter()
                    .map(|&rate| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        -(1.0 - u).ln() / rate
                    })
                    .sum();
                total <= t
            },
            &mut hits,
            |hits, _, delivered| {
                if delivered {
                    *hits += 1;
                }
            },
        );
        let empirical = hits as f64 / trials as f64;
        assert!(
            (empirical - model).abs() < tolerance,
            "K = {k}, g = {g}, L = {l}: model {model} vs Monte-Carlo {empirical}"
        );
    }
}

#[test]
fn tradeoff_delivery_up_anonymity_down_with_copies() {
    // The paper's Figures 10–13 trade-off in one assertion.
    let opts = opts();
    let mut last_delivery = -1.0;
    let mut last_anonymity = 2.0;
    for l in [1u32, 3, 5] {
        let cfg = ProtocolConfig {
            copies: l,
            deadline: TimeDelta::new(60.0),
            ..ProtocolConfig::table2_defaults()
        };
        let point = run_random_graph_point(&cfg, &opts);
        assert!(
            point.analysis_delivery >= last_delivery,
            "delivery should rise with L"
        );
        assert!(
            point.analysis_anonymity <= last_anonymity,
            "anonymity should fall with L"
        );
        last_delivery = point.analysis_delivery;
        last_anonymity = point.analysis_anonymity;
    }
}
