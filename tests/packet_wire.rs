//! Protocol test battery for the constant-size wire packet format
//! (`onion_crypto::wire`):
//!
//! * build → full-peel roundtrip over arbitrary depth and payload,
//! * the constant-size invariant at every hop,
//! * tamper / truncation / wrong-key rejection (with the failed buffer
//!   left byte-identical),
//! * peel-then-repad restoring the exact fixed capacity, and
//! * committed golden wire vectors at fixed seeds (regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test packet_wire`).

use onion_crypto::hex;
use onion_crypto::keys::derive_group_key;
use onion_crypto::wire::{wire_max_payload, WIRE_HEADER_LEN};
use onion_crypto::{
    CryptoError, OnionLayerSpec, RouteTarget, WirePacket, WirePeeled, WIRE_BODY_LEN,
    WIRE_PACKET_LEN, WIRE_PER_LAYER,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const MASTER: [u8; 32] = [7u8; 32];

fn specs(layers: usize) -> Vec<OnionLayerSpec> {
    (0..layers as u32)
        .map(|g| OnionLayerSpec {
            group: g,
            key: derive_group_key(&MASTER, g),
        })
        .collect()
}

/// Bytes of the body that carry sealed data (nonce + masked length +
/// ciphertext + tag) for a `layers`-deep packet over `payload_len`
/// payload bytes; everything after is filler.
fn sealed_span(layers: usize, payload_len: usize) -> usize {
    payload_len + layers * WIRE_PER_LAYER
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Build → full peel returns the exact payload, the packet is
    /// constant-size at every hop, and the header names the hop's group.
    #[test]
    fn build_full_peel_roundtrip(seed in any::<u64>(),
                                 layers in 1usize..=8,
                                 payload in proptest::collection::vec(any::<u8>(), 0..=1024),
                                 dest in any::<u32>()) {
        let specs = specs(layers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pkt = WirePacket::build(&specs, dest, &payload, &mut rng).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            prop_assert_eq!(pkt.as_bytes().len(), WIRE_PACKET_LEN, "size leak at hop {}", i);
            prop_assert_eq!(pkt.target(), RouteTarget::Group(spec.group));
            match pkt.peel_in_place(&spec.key, &mut rng).unwrap() {
                WirePeeled::Forward { next } => {
                    prop_assert!(i + 1 < layers, "forward past the last layer");
                    prop_assert_eq!(next, RouteTarget::Group(specs[i + 1].group));
                }
                WirePeeled::Delivered { node, payload_len } => {
                    prop_assert_eq!(i + 1, layers, "cleartext before the last layer");
                    prop_assert_eq!(node, dest);
                    prop_assert_eq!(payload_len, payload.len());
                    prop_assert_eq!(&pkt.body()[..payload_len], &payload[..]);
                }
            }
            prop_assert_eq!(pkt.as_bytes().len(), WIRE_PACKET_LEN);
        }
    }

    /// Any bit flip inside the sealed span (nonce, masked length,
    /// ciphertext, or tag) is rejected, and the rejected buffer is left
    /// byte-identical so the caller can safely retry or drop.
    #[test]
    fn tampered_packet_rejected_and_buffer_intact(seed in any::<u64>(),
                                                  layers in 1usize..=5,
                                                  payload in proptest::collection::vec(any::<u8>(), 1..256),
                                                  flip in any::<usize>()) {
        let specs = specs(layers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pkt = WirePacket::build(&specs, 9, &payload, &mut rng).unwrap();
        let bit = flip % (sealed_span(layers, payload.len()) * 8);
        let mut bytes = pkt.as_bytes().to_vec();
        bytes[WIRE_HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
        let mut tampered = WirePacket::from_bytes(&bytes).unwrap();
        let err = tampered.peel_in_place(&specs[0].key, &mut rng).unwrap_err();
        prop_assert!(matches!(err, CryptoError::AuthenticationFailed));
        prop_assert_eq!(tampered.as_bytes(), &bytes[..]);
    }

    /// A key for any group other than the outer layer's fails, leaving
    /// the buffer byte-identical.
    #[test]
    fn wrong_key_rejected(seed in any::<u64>(), wrong in 100u32..1000) {
        let specs = specs(3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pkt = WirePacket::build(&specs, 9, b"secret", &mut rng).unwrap();
        let before = pkt.as_bytes().to_vec();
        let bad = derive_group_key(&MASTER, wrong);
        let err = pkt.peel_in_place(&bad, &mut rng).unwrap_err();
        prop_assert!(matches!(err, CryptoError::AuthenticationFailed));
        prop_assert_eq!(pkt.as_bytes(), &before[..]);
    }

    /// Truncated or padded byte strings never parse as wire packets.
    #[test]
    fn truncation_rejected(seed in any::<u64>(), cut in 1usize..8198) {
        let specs = specs(2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pkt = WirePacket::build(&specs, 9, b"m", &mut rng).unwrap();
        let bytes = pkt.as_bytes();
        let err = WirePacket::from_bytes(&bytes[..WIRE_PACKET_LEN - cut]).unwrap_err();
        prop_assert!(matches!(err, CryptoError::LengthMismatch { .. }));
        let mut padded = bytes.to_vec();
        padded.push(0);
        prop_assert!(WirePacket::from_bytes(&padded).is_err());
    }

    /// Peeling frees exactly one layer's overhead and re-pads it with
    /// fresh filler: the sealed span shrinks by `WIRE_PER_LAYER`, the
    /// freed tail is re-randomized, and the packet stays full capacity.
    #[test]
    fn peel_repads_to_exact_capacity(seed in any::<u64>(),
                                     layers in 2usize..=6,
                                     payload in proptest::collection::vec(any::<u8>(), 1..128)) {
        let specs = specs(layers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pkt = WirePacket::build(&specs, 9, &payload, &mut rng).unwrap();
        let old_filler = pkt.body()[sealed_span(layers, payload.len())..].to_vec();
        match pkt.peel_in_place(&specs[0].key, &mut rng).unwrap() {
            WirePeeled::Forward { .. } => {}
            other => prop_assert!(false, "unexpected {:?}", other),
        }
        prop_assert_eq!(pkt.as_bytes().len(), WIRE_PACKET_LEN);
        prop_assert_eq!(pkt.body().len(), WIRE_BODY_LEN);
        // The sealed span shrank by one layer's overhead, and everything
        // past it — including the bytes the old filler occupied — was
        // refilled from the RNG: kilobytes of ChaCha output matching the
        // old filler by chance is impossible.
        prop_assert_ne!(
            &pkt.body()[sealed_span(layers, payload.len())..],
            &old_filler[..]
        );
        // The remaining onion still peels: it is a well-formed
        // (layers-1)-deep packet at full capacity.
        let mut rest = WirePacket::from_bytes(pkt.as_bytes()).unwrap();
        prop_assert!(rest.peel_in_place(&specs[1].key, &mut rng).is_ok());
    }

    /// The advertised capacity is exact: `wire_max_payload(K)` bytes
    /// build, one more byte is rejected with the fixed body size in the
    /// error.
    #[test]
    fn capacity_bound_is_exact(layers in 1usize..=8, seed in any::<u64>()) {
        let specs = specs(layers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max = wire_max_payload(layers);
        let fits = vec![0xABu8; max];
        let mut pkt = WirePacket::build(&specs, 3, &fits, &mut rng).unwrap();
        // The max-size payload survives the full peel.
        for (i, spec) in specs.iter().enumerate() {
            match pkt.peel_in_place(&spec.key, &mut rng).unwrap() {
                WirePeeled::Forward { .. } => prop_assert!(i + 1 < layers),
                WirePeeled::Delivered { payload_len, .. } => {
                    prop_assert_eq!(i + 1, layers);
                    prop_assert_eq!(payload_len, max);
                    prop_assert_eq!(&pkt.body()[..max], &fits[..]);
                }
            }
        }
        let over = vec![0xABu8; max + 1];
        let err = WirePacket::build(&specs, 3, &over, &mut rng).unwrap_err();
        prop_assert!(matches!(err, CryptoError::PaddingTooSmall { .. }));
    }
}

// ---------------------------------------------------------------------
// Committed golden wire vectors: the exact bytes on the wire at fixed
// seeds, so any unintentional format change (layout, nonce draw order,
// length masking, filler discipline) fails loudly.
// ---------------------------------------------------------------------

const GOLDEN_VECTORS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/wire_vectors.txt");

fn golden_packet(layers: usize, seed: u64) -> WirePacket {
    let specs = specs(layers);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    WirePacket::build(&specs, 42, b"golden wire vector payload", &mut rng)
        .expect("payload fits the fixed body")
}

fn computed_vectors() -> String {
    format!(
        "k=1 seed=0xA11CE {}\nk=5 seed=0xB0B {}\n",
        hex::encode(golden_packet(1, 0xA11CE).as_bytes()),
        hex::encode(golden_packet(5, 0xB0B).as_bytes()),
    )
}

#[test]
fn wire_vectors_match_committed_golden() {
    let computed = computed_vectors();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_VECTORS, &computed).expect("write golden wire vectors");
        eprintln!("updated {GOLDEN_VECTORS}");
    }

    let golden = std::fs::read_to_string(GOLDEN_VECTORS)
        .expect("golden wire vectors missing — run with UPDATE_GOLDEN=1 to create them");
    assert_eq!(
        computed.trim_end(),
        golden.trim_end(),
        "wire packet bytes drifted from the committed vectors"
    );
}

#[test]
fn golden_vectors_still_peel() {
    // The committed bytes are not just stable — they decode: parse each
    // vector back and run the full peel chain. Under UPDATE_GOLDEN the
    // file may not exist yet (both tests run concurrently), so fall back
    // to the freshly computed vectors.
    let golden = match std::fs::read_to_string(GOLDEN_VECTORS) {
        Ok(g) => g,
        Err(_) if std::env::var_os("UPDATE_GOLDEN").is_some() => computed_vectors(),
        Err(e) => panic!("golden wire vectors missing ({e}) — run with UPDATE_GOLDEN=1"),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut seen = 0;
    for line in golden.lines() {
        let mut parts = line.split_whitespace();
        let k: usize = parts
            .next()
            .and_then(|p| p.strip_prefix("k="))
            .and_then(|v| v.parse().ok())
            .expect("vector line starts with k=<layers>");
        let hex_bytes = parts.nth(1).expect("vector line ends with hex bytes");
        let bytes = hex::decode(hex_bytes).expect("valid hex");
        let mut pkt = WirePacket::from_bytes(&bytes).expect("valid packet");
        let specs = specs(k);
        for (i, spec) in specs.iter().enumerate() {
            match pkt.peel_in_place(&spec.key, &mut rng).unwrap() {
                WirePeeled::Forward { .. } => assert!(i + 1 < k),
                WirePeeled::Delivered { node, payload_len } => {
                    assert_eq!(i + 1, k);
                    assert_eq!(node, 42);
                    assert_eq!(&pkt.body()[..payload_len], b"golden wire vector payload");
                }
            }
        }
        seen += 1;
    }
    assert_eq!(seen, 2, "expected the k=1 and k=5 vectors");
}
