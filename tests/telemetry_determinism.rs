//! Telemetry must be a pure observer: enabling metrics, recording
//! spans, and flushing snapshots may not perturb a single bit of the
//! experiment results. This is the contract that lets `--metrics-out`
//! ride along on published runs.

use onion_dtn::prelude::*;

fn small_point() -> (ProtocolConfig, ExperimentOptions) {
    let cfg = ProtocolConfig {
        nodes: 40,
        group_size: 4,
        onions: 2,
        compromised: 4,
        deadline: TimeDelta::new(240.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 6,
        realizations: 4,
        seed: 0x7E1E_3E7A,
        threads: 2,
        ..Default::default()
    };
    (cfg, opts)
}

/// One test function (not several) so the global recorder toggles
/// cannot race between parallel test threads within this binary.
#[test]
fn metrics_on_and_off_produce_bit_identical_summaries() {
    let (cfg, opts) = small_point();

    obs::set_metrics_enabled(false);
    let quiet = run_random_graph_point(&cfg, &opts);
    assert!(obs::flush_point("off").is_none(), "no snapshot while off");

    obs::set_metrics_enabled(true);
    let measured = run_random_graph_point(&cfg, &opts);
    let snapshot = obs::take_last_snapshot().expect("point flushed a snapshot");
    obs::set_metrics_enabled(false);

    // The full summary — including the deterministic SimCounters block —
    // must match bit for bit, so serialized forms are identical too.
    assert_eq!(quiet, measured);
    assert_eq!(
        serde_json::to_string(&quiet).unwrap(),
        serde_json::to_string(&measured).unwrap()
    );
    assert_eq!(
        quiet.delivery_stats.mean().map(f64::to_bits),
        measured.delivery_stats.mean().map(f64::to_bits)
    );

    // The snapshot itself carries the expected engine counters and the
    // runner's per-trial histogram.
    assert_eq!(snapshot.label, "random_graph_point");
    assert!(snapshot.counters.get("sim.contacts") > 0);
    assert_eq!(
        snapshot.counters.get("sim.injected"),
        measured.sim_counters.injected
    );
    let trial = snapshot
        .histograms
        .get("runner.trial_secs")
        .expect("runner records per-trial durations");
    assert_eq!(trial.count, opts.realizations as u64);

    // Thread count must not move results even with telemetry enabled.
    obs::set_metrics_enabled(true);
    let serial = run_random_graph_point(
        &cfg,
        &ExperimentOptions {
            threads: 1,
            ..opts.clone()
        },
    );
    obs::set_metrics_enabled(false);
    assert_eq!(serial, measured);
}
