//! End-to-end integration: the abstract simulation's custody chains are
//! cryptographically realizable with the real layered encryption.
//!
//! For every delivered message across several random networks, we build
//! the actual onion (group keys derived from a network master secret) and
//! replay the realized chain: each relay peels its layer with *its own*
//! keyring only.

use onion_dtn::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn simulate(seed: u64, copies: u32) -> (OnionRouting, SimReport, Vec<Message>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = UniformGraphBuilder::new(60).build(&mut rng);
    let schedule = ContactSchedule::sample(&graph, Time::new(400.0), &mut rng);
    let groups = OnionGroups::random_partition(60, 4, &mut rng);
    let mode = if copies == 1 {
        ForwardingMode::SingleCopy
    } else {
        ForwardingMode::MultiCopy
    };
    let mut protocol = OnionRouting::new(groups, 3, mode);
    let messages: Vec<Message> = (0..15u64)
        .map(|i| {
            let source = NodeId(rng.gen_range(0..60));
            let mut destination = NodeId(rng.gen_range(0..60));
            while destination == source {
                destination = NodeId(rng.gen_range(0..60));
            }
            Message {
                id: MessageId(i),
                source,
                destination,
                created: Time::ZERO,
                deadline: TimeDelta::new(400.0),
                copies,
            }
        })
        .collect();
    let report = run(
        &schedule,
        &mut protocol,
        messages.clone(),
        &SimConfig::default(),
        &mut rng,
    )
    .expect("valid messages");
    (protocol, report, messages)
}

#[test]
fn every_delivered_single_copy_chain_is_cryptographically_valid() {
    let mut verified = 0usize;
    for seed in 0..5u64 {
        let (protocol, report, messages) = simulate(seed, 1);
        let ctx = OnionCryptoContext::new([seed as u8; 32], protocol.groups().clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1000);
        for m in &messages {
            let Some(chain) = report.delivered_path(m.id) else {
                continue;
            };
            let route = protocol.route_of(m.id).expect("route exists");
            let payload = format!("payload for {}", m.id).into_bytes();
            let onion = ctx
                .build_onion(route, m.destination, &payload, &mut rng)
                .expect("non-empty route");
            let recovered = ctx
                .walk_custody_chain(onion, &chain)
                .unwrap_or_else(|e| panic!("seed {seed}, {}: {e}", m.id));
            assert_eq!(recovered, payload);
            verified += 1;
        }
    }
    assert!(
        verified > 20,
        "expected many delivered chains, got {verified}"
    );
}

#[test]
fn multi_copy_winning_chains_are_cryptographically_valid() {
    let mut verified = 0usize;
    for seed in 10..14u64 {
        let (protocol, report, messages) = simulate(seed, 3);
        let ctx = OnionCryptoContext::new([seed as u8; 32], protocol.groups().clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 2000);
        for m in &messages {
            let Some(chain) = report.delivered_path(m.id) else {
                continue;
            };
            // The winning chain may include sprayed pre-route custodians
            // (nodes holding the copy before it entered R_1). Those are
            // transport-level carriers, not onion relays: strip leading
            // tag-0 holders so the crypto walk starts at the last
            // pre-route custodian.
            let positions = onion_routing::metrics::custodians_per_position(&report, m.id, 4);
            let route = protocol.route_of(m.id).expect("route exists");
            // Find where the chain enters R_1 (skipping the source, which
            // may itself belong to R_1's group without acting as a relay).
            let groups = protocol.groups();
            let enter = chain
                .iter()
                .enumerate()
                .skip(1)
                .find(|&(_, &v)| groups.contains(route[0], v))
                .map(|(i, _)| i)
                .expect("chain must pass through R_1");
            let crypto_chain = &chain[enter - 1..];
            let payload = b"multi copy payload".to_vec();
            let onion = ctx
                .build_onion(route, m.destination, &payload, &mut rng)
                .expect("non-empty route");
            let recovered = ctx
                .walk_custody_chain(onion, crypto_chain)
                .unwrap_or_else(|e| panic!("seed {seed}, {}: {e}", m.id));
            assert_eq!(recovered, payload);
            assert!(!positions[0].is_empty());
            verified += 1;
        }
    }
    assert!(
        verified > 10,
        "expected many delivered chains, got {verified}"
    );
}

#[test]
fn compromised_relay_outside_group_cannot_peel() {
    let (protocol, report, messages) = simulate(42, 1);
    let ctx = OnionCryptoContext::new([42u8; 32], protocol.groups().clone());
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    for m in &messages {
        let Some(_chain) = report.delivered_path(m.id) else {
            continue;
        };
        let route = protocol.route_of(m.id).expect("route exists");
        let onion = ctx
            .build_onion(route, m.destination, b"secret", &mut rng)
            .expect("non-empty route");
        // A node outside R_1 (e.g. the destination itself) cannot peel the
        // outer layer.
        let outsider_ring = ctx.keyring_for(m.destination);
        let own_group = protocol.groups().group_of(m.destination);
        if own_group != route[0] {
            let key = outsider_ring.key(own_group.0).expect("own key");
            assert!(onion.peel(key).is_err(), "outsider peeled layer 1");
        }
        return; // one case suffices
    }
}
