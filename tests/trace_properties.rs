//! Property-based tests of the trace substrate: activity patterns,
//! synthetic generators, and format parsers under arbitrary valid inputs.

use proptest::prelude::*;
use traces::ActivityPattern;

/// Strategy: a valid activity pattern over a period of 100 units with
/// 1–3 disjoint windows.
fn pattern_strategy() -> impl Strategy<Value = ActivityPattern> {
    // Choose up to 3 window boundaries from a sorted set of cut points.
    proptest::collection::btree_set(0u32..100, 2..=6).prop_map(|cuts| {
        let cuts: Vec<f64> = cuts.into_iter().map(f64::from).collect();
        // Pair consecutive cut points into disjoint windows.
        let windows: Vec<(f64, f64)> = cuts
            .chunks_exact(2)
            .map(|pair| (pair[0], pair[1]))
            .filter(|(s, e)| s < e)
            .collect();
        let windows = if windows.is_empty() {
            vec![(0.0, 50.0)]
        } else {
            windows
        };
        ActivityPattern::new(100.0, windows).expect("constructed disjoint and in-range")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn active_measure_is_monotone_and_bounded(pattern in pattern_strategy(),
                                              t1 in 0.0f64..500.0, dt in 0.0f64..100.0) {
        let a1 = pattern.active_measure(t1);
        let a2 = pattern.active_measure(t1 + dt);
        prop_assert!(a2 >= a1 - 1e-9, "active measure must be monotone");
        prop_assert!(a2 - a1 <= dt + 1e-9, "active time cannot exceed wall time");
    }

    #[test]
    fn active_to_wall_inverts_measure(pattern in pattern_strategy(),
                                      active in 0.0f64..300.0) {
        // Scale active to the available measure to stay meaningful.
        let per = pattern.active_per_period();
        prop_assume!(per > 0.0);
        let wall = pattern.active_to_wall(active);
        let measured = pattern.active_measure(wall);
        prop_assert!((measured - active).abs() < 1e-6,
            "active {} -> wall {} -> measured {}", active, wall, measured);
    }

    #[test]
    fn next_active_is_active_and_minimal(pattern in pattern_strategy(),
                                         t in 0.0f64..300.0) {
        let next = pattern.next_active(t);
        prop_assert!(next >= t);
        prop_assert!(pattern.is_active(next) || next == t,
            "next_active({t}) = {next} is not active");
        // Nothing active strictly between t and next (spot check midpoint).
        if next > t + 1e-6 {
            let mid = 0.5 * (t + next);
            prop_assert!(!pattern.is_active(mid), "found active instant before next_active");
        }
    }

    #[test]
    fn periodicity(pattern in pattern_strategy(), t in 0.0f64..100.0) {
        prop_assert_eq!(pattern.is_active(t), pattern.is_active(t + 100.0));
        let delta = pattern.active_measure(t + 100.0) - pattern.active_measure(t);
        prop_assert!((delta - pattern.active_per_period()).abs() < 1e-9);
    }

    #[test]
    fn haggle_parser_roundtrips_generated_traces(
        seed in any::<u64>(),
        n in 2usize..8,
        contacts in 1usize..40,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Generate a random trace text and parse it back.
        let mut lines = String::new();
        let mut expected = 0usize;
        for _ in 0..contacts {
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
            if a == b { continue; }
            let start = rng.gen_range(0.0..10_000.0f64);
            lines.push_str(&format!("{} {} {} {}\n", a + 1, b + 1, start, start + 10.0));
            expected += 1;
        }
        prop_assume!(expected > 0);
        let parsed = traces::HaggleParser::new().parse_str(&lines).unwrap();
        prop_assert_eq!(parsed.schedule.len(), expected);
        prop_assert!(parsed.schedule.node_count() <= n);
        // Sorted and origin-shifted.
        prop_assert!(parsed.schedule.events().windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert_eq!(parsed.schedule.events()[0].time, contact_graph::Time::ZERO);
    }
}
