//! End-to-end tests of the serving daemon over real TCP sockets.
//!
//! Each test binds port 0 (OS-assigned), runs the server on a
//! background thread, and talks to it with the crate's own minimal
//! HTTP client helpers. Covered here, per DESIGN.md §5:
//!
//! * model responses are byte-identical to offline evaluation;
//! * N identical concurrent sweep requests compute exactly once
//!   (single-flight), proven via the serve counters;
//! * a saturated request queue sheds load with `503` + `Retry-After`;
//! * shutdown drains the in-flight request before the listener dies.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

use onion_dtn::prelude::*;
use onion_dtn::serve::http::{read_response, write_request, Response};
use onion_dtn::serve::{ServeConfig, Server, ServerHandle};

/// Binds port 0 and runs the server on a background thread.
fn start(cfg: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

/// One full request/response exchange on a fresh connection.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, method, path, body).expect("write request");
    read_response(&mut stream).expect("read response")
}

/// The canonical sweep request body used by the concurrency tests:
/// full structs serialized with the same serde the server parses with.
fn sweep_body(cfg: &ProtocolConfig, opts: &ExperimentOptions) -> String {
    format!(
        "{{\"config\":{},\"opts\":{}}}",
        serde_json::to_string(cfg).unwrap(),
        serde_json::to_string(opts).unwrap(),
    )
}

/// A sweep heavy enough (full Table II graph) to reliably hold a
/// worker for several seconds in debug builds — the saturation and
/// drain tests need the daemon to be genuinely busy while the test
/// opens more connections. Sized against the arena/dense-state engine
/// (which is ~3× faster per trial than the original): the realization
/// count keeps the run comfortably multi-second.
fn slow_point() -> (ProtocolConfig, ExperimentOptions) {
    let cfg = ProtocolConfig {
        deadline: TimeDelta::new(1080.0),
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 10,
        realizations: 16,
        seed: 0x5EED,
        ..Default::default()
    };
    (cfg, opts)
}

fn small_point() -> (ProtocolConfig, ExperimentOptions) {
    let cfg = ProtocolConfig {
        nodes: 40,
        group_size: 3,
        onions: 2,
        deadline: TimeDelta::new(360.0),
        compromised: 4,
        ..ProtocolConfig::table2_defaults()
    };
    let opts = ExperimentOptions {
        messages: 6,
        realizations: 3,
        seed: 0xA5A5,
        ..Default::default()
    };
    (cfg, opts)
}

#[test]
fn model_response_is_byte_identical_to_offline_evaluation() {
    let (handle, join) = start(ServeConfig::default());
    let addr = handle.local_addr();

    let body = "{\"lambda\":0.1,\"group_size\":4,\"onions\":2,\"copies\":2,\"deadline\":360.0}";
    let served = exchange(addr, "POST", "/v1/model/delivery", body);
    assert_eq!(served.status, 200, "{}", served.body);

    // The exact same evaluation, performed offline.
    let rates = analysis::uniform_onion_path_rates(0.1, 4, 2).unwrap();
    let expected = onion_dtn::serve::api::DeliveryModel {
        lambda: 0.1,
        group_size: 4,
        onions: 2,
        copies: 2,
        deadline: 360.0,
        delivery_rate: analysis::delivery_rate_multicopy(&rates, 2, 360.0).unwrap(),
        mean_delay: analysis::expected_delay(&rates).unwrap(),
        median_delay: analysis::median_delay(&rates).unwrap(),
        rates,
    };
    assert_eq!(served.body, serde_json::to_string(&expected).unwrap());

    // And the request is a pure function of its body: repeating it
    // yields the identical bytes again.
    let again = exchange(addr, "POST", "/v1/model/delivery", body);
    assert_eq!(again.body, served.body);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_identical_sweeps_compute_exactly_once() {
    const CLIENTS: usize = 6;
    let (handle, join) = start(ServeConfig {
        workers: CLIENTS + 2,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let (cfg, opts) = small_point();
    let body = sweep_body(&cfg, &opts);

    // Fire all clients through a barrier so they overlap the (multi-
    // second) Monte-Carlo run; one leads, the rest coalesce.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let barrier = Arc::clone(&barrier);
            let body = body.clone();
            handles.push(scope.spawn(move || {
                barrier.wait();
                let r = exchange(addr, "POST", "/v1/sweep/point", &body);
                assert_eq!(r.status, 200, "{}", r.body);
                r.body
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = handle.stats();
    assert_eq!(stats.sweep_computes.load(Ordering::SeqCst), 1);
    assert_eq!(
        stats.sweep_coalesced.load(Ordering::SeqCst),
        (CLIENTS - 1) as u64
    );
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0]);
    }

    // Every coalesced (and cached) response is bit-identical to a
    // fresh offline run of the same configuration.
    let offline = serde_json::to_string(&run_random_graph_point(&cfg, &opts)).unwrap();
    assert_eq!(bodies[0], offline);

    // A later identical request is a cache hit — still one compute.
    let cached = exchange(addr, "POST", "/v1/sweep/point", &body);
    assert_eq!(cached.body, offline);
    assert_eq!(stats.sweep_computes.load(Ordering::SeqCst), 1);
    assert!(stats.cache_hits.load(Ordering::SeqCst) >= 1);

    handle.shutdown();
    join.join().unwrap();
}

/// Asserts the unified error envelope `{"error":{"code","message"}}`
/// and returns the `code` string.
fn assert_error_envelope(resp: &Response, want_status: u16) -> String {
    assert_eq!(resp.status, want_status, "{}", resp.body);
    let envelope: onion_dtn::serve::http::ErrorBody =
        serde_json::from_str(&resp.body).expect("error body matches the envelope shape");
    assert!(
        !envelope.error.message.is_empty(),
        "error.message must not be empty"
    );
    envelope.error.code
}

#[test]
fn every_failure_class_uses_the_error_envelope() {
    let (handle, join) = start(ServeConfig::default());
    let addr = handle.local_addr();

    let not_found = exchange(addr, "POST", "/v1/nope", "{}");
    assert_eq!(assert_error_envelope(&not_found, 404), "not_found");

    let wrong_method = exchange(addr, "PUT", "/healthz", "");
    assert_eq!(
        assert_error_envelope(&wrong_method, 405),
        "method_not_allowed"
    );

    let bad_json = exchange(addr, "POST", "/v1/sweep/point", "{not json");
    assert_eq!(assert_error_envelope(&bad_json, 400), "malformed_request");

    let bad_field = exchange(addr, "POST", "/v1/sweep/deadline", "{\"deadlines\":[-5.0]}");
    assert_eq!(assert_error_envelope(&bad_field, 400), "invalid_argument");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metricsz_serves_json_and_prometheus_with_correct_content_types() {
    let (handle, join) = start(ServeConfig::default());
    let addr = handle.local_addr();

    // Generate one observed request so a latency class exists.
    let health = exchange(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);

    let json = exchange(addr, "GET", "/metricsz", "");
    assert_eq!(json.status, 200);
    assert_eq!(
        json.content_type,
        onion_dtn::serve::http::CONTENT_TYPE_JSON,
        "JSON view keeps the application/json content type"
    );
    assert!(json.body.contains("\"endpoints\""));
    assert!(
        json.body.contains("\"endpoint_buckets\""),
        "JSON view exposes the per-class histogram buckets: {}",
        json.body
    );
    assert!(json.body.contains("\"health\""));

    let prom = exchange(addr, "GET", "/metricsz?format=prometheus", "");
    assert_eq!(prom.status, 200);
    assert_eq!(
        prom.content_type,
        onion_dtn::serve::http::CONTENT_TYPE_PROMETHEUS,
        "Prometheus view declares text/plain; version=0.0.4"
    );
    assert!(prom.body.contains("serve_requests_total"));
    assert!(prom
        .body
        .contains("serve_latency_seconds_bucket{class=\"health\",le=\"+Inf\"} 1"));
    assert!(prom
        .body
        .contains("serve_latency_seconds_count{class=\"health\"} 1"));

    let bad = exchange(addr, "GET", "/metricsz?format=xml", "");
    assert_eq!(assert_error_envelope(&bad, 400), "invalid_argument");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn saturated_queue_sheds_load_with_503() {
    // One worker, a one-slot queue: the third concurrent connection
    // has nowhere to go and must be refused at the door.
    let (handle, join) = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let (cfg, opts) = slow_point();
    let body = sweep_body(&cfg, &opts);

    // Occupy the worker with a slow sweep...
    let mut busy = TcpStream::connect(addr).expect("connect busy");
    write_request(&mut busy, "POST", "/v1/sweep/point", &body).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));

    // ...fill the single queue slot...
    let mut queued = TcpStream::connect(addr).expect("connect queued");
    write_request(&mut queued, "GET", "/healthz", "").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));

    // ...and watch the next connection get shed immediately.
    let mut shed = TcpStream::connect(addr).expect("connect shed");
    let refusal = read_response(&mut shed).expect("read 503");
    assert_eq!(assert_error_envelope(&refusal, 503), "overloaded");
    assert_eq!(refusal.retry_after, Some(1));
    assert!(handle.stats().rejected.load(Ordering::SeqCst) >= 1);

    // The accepted requests were unaffected by the shedding.
    assert_eq!(read_response(&mut busy).unwrap().status, 200);
    assert_eq!(read_response(&mut queued).unwrap().status, 200);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_drains_the_in_flight_request() {
    let (handle, join) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let (cfg, opts) = slow_point();
    let body = sweep_body(&cfg, &opts);

    // Get a slow sweep in flight, then pull the plug mid-compute.
    let mut inflight = TcpStream::connect(addr).expect("connect");
    write_request(&mut inflight, "POST", "/v1/sweep/point", &body).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    handle.shutdown();

    // The in-flight request is still served to completion, with the
    // full (offline-identical) payload.
    let served = read_response(&mut inflight).expect("drained response");
    assert_eq!(served.status, 200);
    let offline = serde_json::to_string(&run_random_graph_point(&cfg, &opts)).unwrap();
    assert_eq!(served.body, offline);

    // Only then does the server exit; the port is closed afterwards.
    join.join().unwrap();
    assert!(TcpStream::connect(addr).is_err());
}
