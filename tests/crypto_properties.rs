//! Property-based tests of the crypto substrate: round-trips, tamper
//! detection, and structural invariants of onion packets under arbitrary
//! inputs.

use onion_crypto::aead::{open, open_in_place, seal, seal_in_place, AeadKey};
use onion_crypto::hex;
use onion_crypto::keys::derive_group_key;
use onion_crypto::onion::{
    pad_payload, predicted_size, unpad_payload, OnionBuilder, OnionLayerSpec, Peeled,
};
use onion_crypto::sha256::Sha256;
use onion_crypto::{chacha20, hkdf, hmac, x25519};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aead_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                      aad in proptest::collection::vec(any::<u8>(), 0..64),
                      payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let key = AeadKey::from_bytes(key);
        let boxed = seal(&key, &nonce, &aad, &payload);
        prop_assert_eq!(boxed.len(), payload.len() + 16);
        let opened = open(&key, &nonce, &aad, &boxed).unwrap();
        prop_assert_eq!(opened, payload);
    }

    #[test]
    fn aead_detects_any_single_bit_flip(key in any::<[u8; 32]>(),
                                        payload in proptest::collection::vec(any::<u8>(), 1..64),
                                        flip_bit in 0usize..64) {
        let key = AeadKey::from_bytes(key);
        let nonce = [3u8; 12];
        let mut boxed = seal(&key, &nonce, b"aad", &payload);
        let bit = flip_bit % (boxed.len() * 8);
        boxed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(open(&key, &nonce, b"aad", &boxed).is_err());
    }

    /// The zero-copy in-place seal/open pair is byte-equivalent to the
    /// allocating pair for every key, nonce, aad, and payload.
    #[test]
    fn aead_in_place_matches_allocating(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                        aad in proptest::collection::vec(any::<u8>(), 0..64),
                                        payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let key = AeadKey::from_bytes(key);
        let boxed = seal(&key, &nonce, &aad, &payload);
        let mut buf = payload.clone();
        buf.resize(payload.len() + 16, 0);
        seal_in_place(&key, &nonce, &aad, &mut buf, payload.len());
        prop_assert_eq!(&buf[..], &boxed[..]);
        let len = open_in_place(&key, &nonce, &aad, &mut buf).unwrap();
        prop_assert_eq!(len, payload.len());
        prop_assert_eq!(&buf[..len], &payload[..]);
    }

    /// A failed in-place open must leave the buffer byte-identical (the
    /// wire peel path relies on this to keep packets forwardable after a
    /// wrong-key attempt).
    #[test]
    fn aead_open_in_place_rejects_flip_and_preserves_buffer(
            key in any::<[u8; 32]>(),
            payload in proptest::collection::vec(any::<u8>(), 1..64),
            flip_bit in any::<usize>()) {
        let key = AeadKey::from_bytes(key);
        let nonce = [5u8; 12];
        let mut buf = payload.clone();
        buf.resize(payload.len() + 16, 0);
        seal_in_place(&key, &nonce, b"aad", &mut buf, payload.len());
        let bit = flip_bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        let tampered = buf.clone();
        prop_assert!(open_in_place(&key, &nonce, b"aad", &mut buf).is_err());
        prop_assert_eq!(buf, tampered);
    }

    #[test]
    fn onion_roundtrip_any_depth(seed in any::<u64>(),
                                 depth in 1usize..8,
                                 dest in any::<u32>(),
                                 payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let master = [9u8; 32];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let specs: Vec<OnionLayerSpec> = (0..depth as u32)
            .map(|gid| OnionLayerSpec { group: gid, key: derive_group_key(&master, gid) })
            .collect();
        let onion = OnionBuilder::new(dest, payload.clone())
            .layers(specs.iter().cloned())
            .build(&mut rng)
            .unwrap();
        prop_assert_eq!(onion.len(), predicted_size(depth, payload.len()));

        let mut pkt = onion;
        for (i, spec) in specs.iter().enumerate() {
            match pkt.peel(&spec.key).unwrap() {
                Peeled::Forward { onion, .. } => {
                    prop_assert!(i + 1 < depth, "forward past the last layer");
                    pkt = onion;
                }
                Peeled::ForwardClear { node, payload: got } => {
                    prop_assert_eq!(i + 1, depth);
                    prop_assert_eq!(node, dest);
                    prop_assert_eq!(got, payload.clone());
                    return Ok(());
                }
                Peeled::Deliver { .. } => prop_assert!(false, "no destination key used"),
            }
        }
        prop_assert!(false, "never reached the payload");
    }

    #[test]
    fn onion_rejects_wrong_layer_keys(seed in any::<u64>(), wrong in 0u32..100) {
        let master = [1u8; 32];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let onion = OnionBuilder::new(5, b"m".to_vec())
            .layer(OnionLayerSpec { group: 200, key: derive_group_key(&master, 200) })
            .build(&mut rng)
            .unwrap();
        // Any key other than group 200's fails.
        let bad = derive_group_key(&master, wrong);
        prop_assert!(onion.peel(&bad).is_err());
    }

    #[test]
    fn padding_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..200),
                         extra in 0usize..100) {
        let size = payload.len() + 4 + extra;
        let padded = pad_payload(&payload, size).unwrap();
        prop_assert_eq!(padded.len(), size);
        prop_assert_eq!(unpad_payload(&padded).unwrap(), payload);
    }

    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                       split in 0usize..1024) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn chacha20_is_involution(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                              data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let once = chacha20::xor(&key, &nonce, 1, &data);
        let twice = chacha20::xor(&key, &nonce, 1, &once);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    #[test]
    fn hkdf_is_deterministic_and_length_exact(salt in proptest::collection::vec(any::<u8>(), 0..32),
                                              ikm in proptest::collection::vec(any::<u8>(), 1..64),
                                              len in 1usize..200) {
        let a = hkdf::derive(&salt, &ikm, b"ctx", len);
        let b = hkdf::derive(&salt, &ikm, b"ctx", len);
        prop_assert_eq!(a.len(), len);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hmac_keys_separate(key_a in any::<[u8; 16]>(), key_b in any::<[u8; 16]>(),
                          msg in proptest::collection::vec(any::<u8>(), 0..100)) {
        prop_assume!(key_a != key_b);
        prop_assert_ne!(hmac::hmac_sha256(&key_a, &msg), hmac::hmac_sha256(&key_b, &msg));
    }

    #[test]
    fn x25519_dh_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        prop_assert_eq!(x25519::shared_secret(&a, &pb), x25519::shared_secret(&b, &pa));
    }
}
